"""Numerically-stable softmax for dense and N:M-compressed score matrices.

Because the compressed nonzero matrix is only ``N/M`` of the dense width, the
softmax that follows the SDDMM touches half as much data (Section 3.2: "the
succeeding softmax is also accelerated").  The sparse variant normalises over
the *stored* entries only, which is mathematically identical to a dense
softmax whose pruned logits were set to ``-inf``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.sparse import NMSparseMatrix

#: Values at or below this threshold are treated as masked-out logits (they
#: come from blocked-ELL masking in the fused SDDMM) and receive zero weight.
MASKED_LOGIT_THRESHOLD = -1e29


def dense_softmax(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    """Standard max-subtracted softmax along ``axis``."""
    scores = np.asarray(scores, dtype=np.float32)
    shifted = scores - np.max(scores, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def masked_dense_softmax(
    scores: np.ndarray, mask: np.ndarray, axis: int = -1
) -> np.ndarray:
    """Dense softmax where positions with ``mask == False`` receive zero weight."""
    scores = np.asarray(scores, dtype=np.float32)
    mask = np.asarray(mask, dtype=bool)
    neg = np.where(mask, scores, np.float32(-np.inf))
    with np.errstate(invalid="ignore"):
        # rows that are fully masked produce -inf - (-inf) = nan; forced to 0 below
        shifted = neg - np.max(neg, axis=axis, keepdims=True)
        exp = np.where(np.isfinite(shifted), np.exp(shifted), 0.0)
    denom = np.sum(exp, axis=axis, keepdims=True)
    denom = np.where(denom == 0.0, 1.0, denom)
    return exp / denom


def sparse_softmax(scores: NMSparseMatrix) -> NMSparseMatrix:
    """Row softmax over the stored nonzeros of an N:M-compressed score matrix.

    Entries produced by blocked-ELL masking (values ≤ ``MASKED_LOGIT_THRESHOLD``)
    are excluded from the normalisation and receive exactly zero weight.
    """
    vals = scores.values
    masked = vals <= MASKED_LOGIT_THRESHOLD
    safe_vals = np.where(masked, -np.inf, vals)
    row_max = np.max(safe_vals, axis=-1, keepdims=True)
    row_max = np.where(np.isfinite(row_max), row_max, 0.0)
    exp = np.where(masked, 0.0, np.exp(safe_vals - row_max))
    denom = np.sum(exp, axis=-1, keepdims=True)
    denom = np.where(denom == 0.0, 1.0, denom)
    return scores.with_values(exp / denom)


def sparse_softmax_streaming(scores: NMSparseMatrix, chunk_rows: int = 1024) -> NMSparseMatrix:
    """Chunked variant of :func:`sparse_softmax` for very long sequences.

    Mirrors the "long sequence" softmax implementation discussed in Appendix
    A.4: rows are processed in chunks so only a bounded slice of the score
    matrix is resident at once.  Numerically identical to the one-shot version.
    """
    vals = scores.values
    flat = vals.reshape(-1, vals.shape[-1])
    out = np.empty_like(flat)
    for start in range(0, flat.shape[0], chunk_rows):
        stop = min(start + chunk_rows, flat.shape[0])
        chunk = flat[start:stop]
        masked = chunk <= MASKED_LOGIT_THRESHOLD
        safe = np.where(masked, -np.inf, chunk)
        row_max = np.max(safe, axis=-1, keepdims=True)
        row_max = np.where(np.isfinite(row_max), row_max, 0.0)
        exp = np.where(masked, 0.0, np.exp(safe - row_max))
        denom = np.sum(exp, axis=-1, keepdims=True)
        denom = np.where(denom == 0.0, 1.0, denom)
        out[start:stop] = exp / denom
    return scores.with_values(out.reshape(vals.shape))
