"""Numerically-stable softmax for dense and N:M-compressed score matrices.

Because the compressed nonzero matrix is only ``N/M`` of the dense width, the
softmax that follows the SDDMM touches half as much data (Section 3.2: "the
succeeding softmax is also accelerated").  The sparse variant normalises over
the *stored* entries only, which is mathematically identical to a dense
softmax whose pruned logits were set to ``-inf``.

The sparse softmax is registered as the ``masked_softmax`` kernel with two
backends: ``reference`` (row-chunked loop, mirroring the long-sequence CUDA
implementation of Appendix A.4) and ``fast`` (cache-blocked in-place passes
that, on ragged padded-CSR layouts, reduce over the ``valid_lanes()`` segments
only instead of the full padded lane width).

:func:`masked_softmax_values` is the shared value-space core: both the fast
registry kernel and the fused :class:`~repro.core.plan.AttentionPlan` call it,
which is what makes the fused pipeline bitwise-identical to the staged one.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.backend import FAST, REFERENCE, get_kernel, register_kernel

#: Values at or below this threshold are treated as masked-out logits (they
#: come from blocked-ELL masking in the fused SDDMM) and receive zero weight.
MASKED_LOGIT_THRESHOLD = -1e29


def dense_softmax(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    """Standard max-subtracted softmax along ``axis``."""
    scores = np.asarray(scores, dtype=np.float32)
    shifted = scores - np.max(scores, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def masked_dense_softmax(
    scores: np.ndarray, mask: np.ndarray, axis: int = -1
) -> np.ndarray:
    """Dense softmax where positions with ``mask == False`` receive zero weight.

    A fully-masked row receives exactly zero weight everywhere (never a
    uniform distribution): pruned positions must not leak attention.
    """
    scores = np.asarray(scores, dtype=np.float32)
    mask = np.asarray(mask, dtype=bool)
    neg = np.where(mask, scores, np.float32(-np.inf))
    with np.errstate(invalid="ignore"):
        # a fully-masked row is all -inf, so shifted = -inf - (-inf) = nan and
        # the isfinite() select zeroes the entire row — together with the
        # denom clamp below this guarantees such rows get exactly zero weight
        # (never a uniform distribution); pinned by the fully-masked-row tests
        shifted = neg - np.max(neg, axis=axis, keepdims=True)
        exp = np.where(np.isfinite(shifted), np.exp(shifted), 0.0)
    denom = np.sum(exp, axis=axis, keepdims=True)
    denom = np.where(denom == 0.0, 1.0, denom)
    return exp / denom


def masked_exp_terms(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Unnormalised softmax numerator and denominator over stored nonzeros.

    Returns ``(exp, denom)`` where ``exp`` holds the max-subtracted
    exponentials (zero at masked-logit positions) and ``denom`` their row sums
    with fully-masked rows clamped to one.  ``exp / denom`` is the softmax;
    keeping the terms separate lets the fused softmax+SpMM kernel normalise
    *after* the value contraction and skip materialising the probabilities.
    """
    masked = values <= MASKED_LOGIT_THRESHOLD
    safe_vals = np.where(masked, -np.inf, values)
    row_max = np.max(safe_vals, axis=-1, keepdims=True)
    row_max = np.where(np.isfinite(row_max), row_max, 0.0)
    exp = np.where(masked, 0.0, np.exp(safe_vals - row_max))
    denom = np.sum(exp, axis=-1, keepdims=True)
    denom = np.where(denom == 0.0, 1.0, denom)
    return exp, denom


def _chunked_row_softmax(
    values: np.ndarray, out: np.ndarray, chunk_rows: int = 2048
) -> np.ndarray:
    """Masked row softmax over full-width rows, written into ``out``.

    Rows are processed in cache-sized chunks and every elementwise op lands in
    ``out`` (which may alias ``values``), so the whole pass keeps one chunk of
    temporaries resident instead of eight full-tensor ones — this is what
    makes the fast backend beat the reference loop at default scale.
    """
    flat = values.reshape(-1, values.shape[-1])
    oflat = out.reshape(flat.shape)
    for start in range(0, flat.shape[0], chunk_rows):
        stop = min(start + chunk_rows, flat.shape[0])
        vals = flat[start:stop]
        o = oflat[start:stop]
        masked = vals <= MASKED_LOGIT_THRESHOLD
        row_max = np.max(np.where(masked, -np.inf, vals), axis=-1, keepdims=True)
        row_max = np.where(np.isfinite(row_max), row_max, 0.0)
        np.subtract(vals, row_max, out=o)  # repro: owns-buffer — caller-provided out
        np.exp(o, out=o)  # repro: owns-buffer — caller-provided out
        o[masked] = 0.0  # repro: owns-buffer — caller-provided out
        denom = np.sum(o, axis=-1, keepdims=True)
        # repro: owns-buffer — caller-provided out
        np.divide(o, np.where(denom == 0.0, 1.0, denom), out=o)
    return out


def _segmented_row_softmax(
    values: np.ndarray,
    valid: np.ndarray,
    lengths: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Masked row softmax reducing over the valid-lane segments only.

    Ragged padded-CSR rows carry on average far fewer valid lanes than the
    padded width; gathering them into one flat vector and using segmented
    ``reduceat`` reductions skips the padding entirely.  Padding lanes of
    ``out`` are exactly zero, fully-masked rows get exactly zero weight.
    """
    flat_lengths = lengths.reshape(-1).astype(np.int64, copy=False)
    # gather before zeroing: ``out`` may alias ``values`` in the fused plan
    flat = values[valid]
    out[...] = 0.0  # repro: owns-buffer — caller-provided out, gathered above
    nonempty = flat_lengths > 0
    if flat.size == 0 or not nonempty.any():
        return out
    starts = np.zeros(flat_lengths.shape[0], dtype=np.int64)
    np.cumsum(flat_lengths[:-1], out=starts[1:])
    # reduceat on an empty segment returns the element at its start index, not
    # an identity — restrict the segment starts to nonempty rows (empty rows
    # stay zero via the zero-initialised output, matching the fully-masked
    # row semantics)
    seg = starts[nonempty]
    reps = flat_lengths[nonempty]
    masked = flat <= MASKED_LOGIT_THRESHOLD
    if masked.any():
        flat = np.where(masked, -np.inf, flat)
    row_max = np.maximum.reduceat(flat, seg)
    row_max = np.where(np.isfinite(row_max), row_max, 0.0)
    flat = flat - np.repeat(row_max, reps)
    np.exp(flat, out=flat)  # exp(-inf) = +0.0 exactly at masked valid lanes
    denom = np.add.reduceat(flat, seg)
    denom = np.where(denom == 0.0, 1.0, denom)
    np.divide(flat, np.repeat(denom, reps), out=flat)
    out[valid] = flat  # repro: owns-buffer — caller-provided out
    return out


def masked_softmax_values(
    values: np.ndarray,
    valid: Optional[np.ndarray] = None,
    lengths: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
    segmented: Optional[bool] = None,
) -> np.ndarray:
    """Value-space masked row softmax shared by the fast kernel and the plan.

    ``valid``/``lengths`` are the layout's ``valid_lanes()`` and
    ``row_lengths()`` (``valid is None`` for layouts with no padding lanes,
    e.g. N:M).  ``out`` may alias ``values`` for in-place execution — the
    fused :class:`~repro.core.plan.AttentionPlan` exploits this to reuse the
    score buffer as the probability buffer.

    ``segmented`` pins the implementation choice: ``None`` keeps the
    cost-based auto dispatch; ``True``/``False`` force the segmented or
    chunked pass.  The two passes sum row denominators in different orders
    (``np.add.reduceat`` vs pairwise ``np.sum``), so a caller executing one
    logical softmax as several row tiles must decide the branch *once* on the
    global lengths and pin it for every tile to stay bitwise-identical — a
    tile's local ``lengths.min()`` can otherwise flip the dispatch.
    """
    if out is None:
        out = np.empty_like(values)
    if valid is None:
        return _chunked_row_softmax(values, out)
    if segmented is None:
        # no padding lanes anywhere: the dense chunked pass is cheaper than
        # the gather/scatter of the segmented one
        segmented = int(lengths.min()) < values.shape[-1]
    if not segmented:
        return _chunked_row_softmax(values, out)
    return _segmented_row_softmax(values, valid, lengths, out)


def sparse_softmax(scores, backend: Optional[str] = None):
    """Row softmax over the stored nonzeros of a compressed score matrix.

    ``scores`` may be any :class:`~repro.core.layout.CompressedLayout`
    (N:M or padded CSR) — the kernel only touches ``.values`` and the
    structure is carried through unchanged.  Entries produced by blocked-ELL
    or padded-CSR masking (values ≤ ``MASKED_LOGIT_THRESHOLD``, e.g. the
    padding-lane sentinel) are excluded from the normalisation and receive
    exactly zero weight.
    ``backend`` selects the registered ``masked_softmax`` implementation
    (default: ``$REPRO_BACKEND``, else "fast").
    """
    return get_kernel("masked_softmax", backend)(scores)


@register_kernel("masked_softmax", FAST)
def _sparse_softmax_fast(scores):
    """Cache-blocked pass; segmented over ``valid_lanes()`` on ragged layouts."""
    valid = scores.valid_lanes()
    lengths = None if valid is None else scores.row_lengths()
    return scores.with_values(masked_softmax_values(scores.values, valid, lengths))


@register_kernel("masked_softmax", REFERENCE)
def _sparse_softmax_reference(scores):
    """Row-chunked loop implementation (the Appendix A.4 structure)."""
    return sparse_softmax_streaming(scores)


def sparse_softmax_streaming(scores, chunk_rows: int = 1024):
    """Chunked variant of :func:`sparse_softmax` for very long sequences.

    Mirrors the "long sequence" softmax implementation discussed in Appendix
    A.4: rows are processed in chunks so only a bounded slice of the score
    matrix is resident at once.  Numerically identical to the one-shot version.
    """
    vals = scores.values
    flat = vals.reshape(-1, vals.shape[-1])
    out = np.empty_like(flat)
    for start in range(0, flat.shape[0], chunk_rows):
        stop = min(start + chunk_rows, flat.shape[0])
        exp, denom = masked_exp_terms(flat[start:stop])
        out[start:stop] = exp / denom
    return scores.with_values(out.reshape(vals.shape))
