"""Mean-squared-error comparison with Performer's softmax kernel (Appendix A.5).

For query/key vectors ``q, k ~ N(0, I_d)`` the softmax kernel is
``SM(q, k) = exp(qᵀk / sqrt(d))``.  Appendix A.5 derives

* the MSE of the DFSS 1:2 estimator (Eq. 30), which zeroes the kernel when a
  *competing* key ``k'`` wins the pairwise comparison, and
* the upper bound on the MSE of Performer's positive orthogonal random-feature
  estimator (Eq. 31, from Choromanski et al.).

Both closed forms plus Monte-Carlo estimators are provided, so the claim
"DFSS approximates large kernel values better, Performer is fine for small
ones" can be checked numerically.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.special import erf

from repro.utils.seeding import new_rng


def softmax_kernel(q: np.ndarray, k: np.ndarray, d: int = None) -> np.ndarray:
    """``SM(q, k) = exp(qᵀ k / sqrt(d))`` for row-vector batches."""
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    if d is None:
        d = q.shape[-1]
    return np.exp(np.sum(q * k, axis=-1) / np.sqrt(d))


def mse_dfss_theory(sm_value: float, q_norm: float, d: int) -> float:
    """Closed-form MSE of the DFSS 1:2 estimator (Eq. 30).

    ``MSE = SM²(q,k) * (1 - erf(sqrt(d) * ln(SM) / (||q||_2 * sqrt(2)))) / 2``.
    """
    if sm_value <= 0:
        raise ValueError("the softmax kernel value must be positive")
    if q_norm <= 0:
        raise ValueError("||q|| must be positive")
    arg = np.sqrt(d) * np.log(sm_value) / (q_norm * np.sqrt(2.0))
    return float(sm_value**2 * (1.0 - erf(arg)) / 2.0)


def mse_performer_bound(
    sm_value: float, q_norm: float, k_norm: float, d: int, num_features: int
) -> float:
    """Upper bound on the MSE of Performer's positive softmax kernel (Eq. 31)."""
    if sm_value <= 0:
        raise ValueError("the softmax kernel value must be positive")
    m = num_features
    term = (
        np.exp((q_norm**2 + k_norm**2) / np.sqrt(d)) * sm_value**2
        - 1.0
        - (1.0 - 1.0 / m) * 2.0 / (d + 2.0)
    )
    return float(sm_value**2 * term / m)


def mse_dfss_monte_carlo(
    q: np.ndarray, k: np.ndarray, trials: int = 20000, seed=0
) -> Tuple[float, float]:
    """Monte-Carlo MSE of the DFSS 1:2 estimator for a fixed ``(q, k)`` pair.

    The competing key ``k'`` is drawn from ``N(0, I_d)``; the estimator keeps
    ``SM(q, k)`` when ``qᵀk > qᵀk'`` and outputs zero otherwise.  Returns the
    estimated MSE and the exact kernel value.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    d = q.shape[-1]
    rng = new_rng(seed)
    k_prime = rng.normal(size=(trials, d))
    sm = float(softmax_kernel(q[None, :], k[None, :])[0])
    qk = float(q @ k)
    qk_prime = k_prime @ q
    estimate = np.where(qk > qk_prime, sm, 0.0)
    return float(np.mean((estimate - sm) ** 2)), sm


def mse_performer_monte_carlo(
    q: np.ndarray,
    k: np.ndarray,
    num_features: int = 64,
    trials: int = 200,
    seed=0,
) -> Tuple[float, float]:
    """Monte-Carlo MSE of Performer's positive random-feature softmax estimator.

    Uses the FAVOR+ positive feature map
    ``phi(x) = exp(wᵀx/d^{1/4} - ||x||²/(2 sqrt(d))) / sqrt(m)`` with Gaussian
    features ``w``; the estimator is ``phi(q)ᵀ phi(k)``.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    d = q.shape[-1]
    rng = new_rng(seed)
    sm = float(softmax_kernel(q[None, :], k[None, :])[0])
    errors = np.empty(trials)
    scale = d**0.25
    for t in range(trials):
        w = rng.normal(size=(num_features, d))
        phi_q = np.exp(w @ q / scale - (q @ q) / (2.0 * np.sqrt(d))) / np.sqrt(num_features)
        phi_k = np.exp(w @ k / scale - (k @ k) / (2.0 * np.sqrt(d))) / np.sqrt(num_features)
        errors[t] = (float(phi_q @ phi_k) - sm) ** 2
    return float(errors.mean()), sm


def mse_comparison_curve(
    d: int = 64,
    num_features: int = 266,
    kernel_values: np.ndarray = None,
    q_norm: float = None,
) -> dict:
    """Theory curves of Eq. 30 / Eq. 31 over a range of kernel values.

    Returns a dict with keys ``sm``, ``dfss``, ``performer_bound`` suitable for
    the Appendix-A.5 comparison: both MSEs vanish as ``SM -> 0`` while for
    large ``SM`` the Performer bound blows up and the DFSS error shrinks.
    """
    if kernel_values is None:
        kernel_values = np.logspace(-2, 1.0, 25)
    if q_norm is None:
        q_norm = float(np.sqrt(d))  # E||q||_2 for q ~ N(0, I_d)
    dfss = np.array([mse_dfss_theory(s, q_norm, d) for s in kernel_values])
    perf = np.array(
        [mse_performer_bound(s, q_norm, q_norm, d, num_features) for s in kernel_values]
    )
    return {"sm": np.asarray(kernel_values), "dfss": dfss, "performer_bound": perf}
