"""SDDMM with a fused N:M pruning epilogue (Section 3.4, Appendix A.1.2).

The paper's key kernel computes ``S = Q Kᵀ`` like an ordinary dense GEMM, but
instead of writing the dense score matrix to memory it prunes each output tile
to N:M sparsity while the accumulators are still in registers and only writes
the compressed nonzeros + metadata.  Functionally this is

    ``sddmm_nm(Q, K) == NMSparseMatrix.from_dense(Q @ K.T * scale)``

Two backends are registered with :mod:`repro.core.backend`:

* ``reference`` — loops over batch/head slices and runs the tile-by-tile
  kernel (:func:`sddmm_nm_tiled`) that mirrors the CUDA kernel's blocking
  (Mtile x Ntile thread-block tiles, 32 x 64-byte epilogue tiles) and doubles
  as the traffic-count oracle for the performance model;
* ``fast`` — a single batched tensor contraction over all ``(B, H)`` slices
  followed by the vectorised selection-network compress
  (:func:`repro.core.pruning.nm_compress_fast`), with no Python-level loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.backend import FAST, REFERENCE, get_kernel, register_kernel
from repro.core.blocked_ell import BlockedEllMask
from repro.core.patterns import default_pattern_for_dtype, resolve_pattern
from repro.core.precision import dtype_bytes, simulate_tensor_core_matmul
from repro.core.pruning import nm_compress, nm_compress_fast
from repro.core.sparse import NMSparseMatrix
from repro.utils.shapes import as_batched_3d, restore_batch_shape

#: Sentinel written to score positions excluded by a blocked-ELL mask; large
#: and negative so the sparse softmax assigns them exactly zero weight.
MASKED_SCORE = np.float32(-1e30)


@dataclass
class SddmmTraffic:
    """Bytes moved by one SDDMM launch, used to validate the analytical model."""

    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def total(self) -> int:
        return self.bytes_read + self.bytes_written


def _prepare_inputs(q: np.ndarray, k: np.ndarray):
    q3, batch_shape = as_batched_3d(np.asarray(q, dtype=np.float32))
    k3, k_batch = as_batched_3d(np.asarray(k, dtype=np.float32))
    if batch_shape != k_batch:
        raise ValueError(f"Q batch shape {batch_shape} != K batch shape {k_batch}")
    if q3.shape[-1] != k3.shape[-1]:
        raise ValueError(
            f"Q feature dim {q3.shape[-1]} != K feature dim {k3.shape[-1]}"
        )
    return q3, k3, batch_shape


def sddmm_nm(
    q: np.ndarray,
    k: np.ndarray,
    pattern=None,
    scale: Optional[float] = None,
    dtype: str = "float32",
    criterion: str = "value",
    block_mask: Optional[BlockedEllMask] = None,
    backend: Optional[str] = None,
) -> NMSparseMatrix:
    """Compute ``scale * Q Kᵀ`` and prune it to N:M sparsity in one step.

    Parameters
    ----------
    q, k:
        ``(..., seq, d)`` query and key matrices (same leading batch shape).
    pattern:
        N:M pattern; defaults to the hardware pattern for ``dtype``
        (1:2 for float32, 2:4 for bfloat16).
    scale:
        Score scaling; defaults to ``1/sqrt(d)`` as in Eq. (1).
    dtype:
        Logical element type; operands are rounded to the tensor-core input
        precision before the multiply.
    criterion:
        "value" (default, what the attention epilogue does) or "magnitude".
    block_mask:
        Optional hybrid blocked-ELL mask; score blocks outside the mask are
        never computed and their groups keep the first N entries with value
        ``-inf`` replaced by a large negative number so softmax ignores them.
    backend:
        Kernel backend ("reference" or "fast"); defaults to the value of
        ``$REPRO_BACKEND``, else "fast".

    Returns
    -------
    :class:`~repro.core.sparse.NMSparseMatrix` of shape ``(..., seq_q, seq_k)``.
    """
    return get_kernel("sddmm_nm", backend)(
        q,
        k,
        pattern=pattern,
        scale=scale,
        dtype=dtype,
        criterion=criterion,
        block_mask=block_mask,
    )


@register_kernel("sddmm_nm", FAST)
def _sddmm_nm_fast(
    q: np.ndarray,
    k: np.ndarray,
    pattern=None,
    scale: Optional[float] = None,
    dtype: str = "float32",
    criterion: str = "value",
    block_mask: Optional[BlockedEllMask] = None,
) -> NMSparseMatrix:
    """Batched SDDMM + prune: one contraction and one vectorised compress."""
    q3, k3, batch_shape = _prepare_inputs(q, k)
    d = q3.shape[-1]
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    pattern = (
        default_pattern_for_dtype(dtype) if pattern is None else resolve_pattern(pattern)
    )
    scores = simulate_tensor_core_matmul(q3, np.swapaxes(k3, -1, -2), dtype) * scale
    if block_mask is not None:
        dense_mask = block_mask.dense_mask(scores.shape[-2], scores.shape[-1])
        scores = np.where(dense_mask, scores, MASKED_SCORE)
    values, indices = nm_compress_fast(scores, pattern, criterion)
    values = restore_batch_shape(values, batch_shape)
    indices = restore_batch_shape(indices, batch_shape)
    return NMSparseMatrix(
        values=values,
        indices=indices,
        pattern=pattern,
        dense_cols=scores.shape[-1],
        dtype=dtype,
    )


@register_kernel("sddmm_nm", REFERENCE)
def _sddmm_nm_reference(
    q: np.ndarray,
    k: np.ndarray,
    pattern=None,
    scale: Optional[float] = None,
    dtype: str = "float32",
    criterion: str = "value",
    block_mask: Optional[BlockedEllMask] = None,
) -> NMSparseMatrix:
    """Per-slice tile-by-tile SDDMM: batching is a Python loop, as ``blockIdx.z``."""
    q3, k3, batch_shape = _prepare_inputs(q, k)
    pattern = (
        default_pattern_for_dtype(dtype) if pattern is None else resolve_pattern(pattern)
    )
    slices = [
        sddmm_nm_tiled(
            q3[b],
            k3[b],
            pattern=pattern,
            scale=scale,
            dtype=dtype,
            criterion=criterion,
            block_mask=block_mask,
        )
        for b in range(q3.shape[0])
    ]
    values = restore_batch_shape(np.stack([s.values for s in slices]), batch_shape)
    indices = restore_batch_shape(np.stack([s.indices for s in slices]), batch_shape)
    return NMSparseMatrix(
        values=values,
        indices=indices,
        pattern=pattern,
        dense_cols=k3.shape[-2],
        dtype=dtype,
    )


def sddmm_masked(
    a: np.ndarray,
    b: np.ndarray,
    structure: "CompressedLayout",
    backend: Optional[str] = None,
) -> "CompressedLayout":
    """SDDMM restricted to an existing compressed structure: ``(A Bᵀ) ∘ mask``.

    Computes ``C[i, k] = A[i, :] · B[col(i, k), :]`` for every stored nonzero
    of ``structure`` and returns a compressed matrix sharing that structure.
    ``structure`` may be any :class:`~repro.core.layout.CompressedLayout`
    (N:M or padded CSR; padding lanes of a padded layout come back exactly
    zero).  This is the backward-pass sibling of :func:`sddmm_nm`: the
    selection is a constant of the graph, so gradients such as
    ``dP = (dO Vᵀ) ∘ mask`` only ever need the already-chosen positions — no
    pruning epilogue runs here.
    """
    return get_kernel("sddmm_masked", backend)(a, b, structure)


def _zero_padding_lanes(values: np.ndarray, structure) -> np.ndarray:
    """Zero the padding lanes of gathered values (no-op for fixed-width layouts)."""
    valid = structure.valid_lanes()
    if valid is None:
        return values
    return np.where(valid, values, np.float32(0.0))


def _check_masked_operands(a: np.ndarray, b: np.ndarray, structure):
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    if a.shape[:-2] != structure.batch_shape or b.shape[:-2] != structure.batch_shape:
        raise ValueError(
            f"operand batch shapes {a.shape[:-2]} / {b.shape[:-2]} != "
            f"sparse batch shape {structure.batch_shape}"
        )
    if a.shape[-2] != structure.rows:
        raise ValueError(
            f"A rows ({a.shape[-2]}) must equal the sparse row count ({structure.rows})"
        )
    if b.shape[-2] != structure.dense_cols:
        raise ValueError(
            f"B rows ({b.shape[-2]}) must equal the dense column count "
            f"({structure.dense_cols})"
        )
    if a.shape[-1] != b.shape[-1]:
        raise ValueError(f"feature dims differ: {a.shape[-1]} vs {b.shape[-1]}")
    return a, b


@register_kernel("sddmm_masked", REFERENCE)
def _sddmm_masked_reference(
    a: np.ndarray, b: np.ndarray, structure
):
    """Per-slice gather + einsum, walking the metadata like each thread block."""
    a, b = _check_masked_operands(a, b, structure)
    a3, batch_shape = as_batched_3d(a)
    b3, _ = as_batched_3d(b)
    cols3, _ = as_batched_3d(structure.column_indices())
    out = np.empty(cols3.shape, dtype=np.float32)
    for s in range(a3.shape[0]):
        gathered = b3[s][cols3[s]]  # (n_q, kept, d)
        out[s] = np.einsum("qd,qkd->qk", a3[s], gathered, optimize=True)
    values = _zero_padding_lanes(restore_batch_shape(out, batch_shape), structure)
    return structure.with_values(values)


@register_kernel("sddmm_masked", FAST)
def _sddmm_masked_fast(
    a: np.ndarray, b: np.ndarray, structure
):
    """Batched dense contraction followed by a gather of the stored positions."""
    a, b = _check_masked_operands(a, b, structure)
    a3, _ = as_batched_3d(a)
    b3, _ = as_batched_3d(b)
    dense = np.matmul(a3, np.swapaxes(b3, -1, -2))
    values = _zero_padding_lanes(structure.gather_dense(dense), structure)
    return structure.with_values(values)


def sddmm_csr(
    q: np.ndarray,
    k: np.ndarray,
    structure,
    scale: Optional[float] = None,
    backend: Optional[str] = None,
):
    """SDDMM writing ``scale * Q Kᵀ`` into an existing padded-CSR structure.

    This is the forward kernel of the mask-based sparse training path: the
    mechanism's boolean mask is compressed once
    (:meth:`~repro.core.padded_csr.PaddedCSRMatrix.from_mask`) and the score
    computation touches only the stored columns.  Padding lanes are written
    with the ``MASKED_SCORE`` sentinel so the succeeding sparse softmax
    assigns them exactly zero weight — a fully masked row (length 0) comes
    out with zero attention everywhere, matching the dense masked softmax.

    ``structure`` may be any :class:`~repro.core.layout.CompressedLayout`;
    for a fixed-width layout (no padding) the result simply shares its
    structure, like :func:`sddmm_masked` with the scale applied.
    """
    return get_kernel("sddmm_csr", backend)(q, k, structure, scale=scale)


def _mask_padding_lanes(values: np.ndarray, structure) -> np.ndarray:
    """Stamp the masked-score sentinel onto padding lanes of score values."""
    valid = structure.valid_lanes()
    if valid is None:
        return values
    return np.where(valid, values, MASKED_SCORE)


def _csr_scale(q3: np.ndarray, scale: Optional[float]) -> np.float32:
    return np.float32(1.0 / np.sqrt(q3.shape[-1]) if scale is None else scale)


@register_kernel("sddmm_csr", REFERENCE)
def _sddmm_csr_reference(
    q: np.ndarray, k: np.ndarray, structure, scale: Optional[float] = None
):
    """Per-slice gather + einsum over the stored columns only."""
    q, k = _check_masked_operands(q, k, structure)
    q3, batch_shape = as_batched_3d(q)
    k3, _ = as_batched_3d(k)
    cols3, _ = as_batched_3d(structure.column_indices())
    factor = _csr_scale(q3, scale)
    out = np.empty(cols3.shape, dtype=np.float32)
    for s in range(q3.shape[0]):
        gathered = k3[s][cols3[s]]  # (n_q, width, d)
        out[s] = np.einsum("qd,qkd->qk", q3[s], gathered, optimize=True) * factor
    values = _mask_padding_lanes(restore_batch_shape(out, batch_shape), structure)
    return structure.with_values(values)


@register_kernel("sddmm_csr", FAST)
def _sddmm_csr_fast(
    q: np.ndarray, k: np.ndarray, structure, scale: Optional[float] = None
):
    """Batched contraction + one gather of the stored positions."""
    q, k = _check_masked_operands(q, k, structure)
    q3, _ = as_batched_3d(q)
    k3, _ = as_batched_3d(k)
    scores = np.matmul(q3, np.swapaxes(k3, -1, -2)) * _csr_scale(q3, scale)
    values = _mask_padding_lanes(structure.gather_dense(scores), structure)
    return structure.with_values(values)


def sddmm_dense(
    q: np.ndarray,
    k: np.ndarray,
    scale: Optional[float] = None,
    dtype: str = "float32",
) -> np.ndarray:
    """Reference dense score matrix ``scale * Q Kᵀ`` (the full-attention path)."""
    q3, k3, batch_shape = _prepare_inputs(q, k)
    d = q3.shape[-1]
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    scores = simulate_tensor_core_matmul(q3, np.swapaxes(k3, -1, -2), dtype) * scale
    return restore_batch_shape(scores, batch_shape)


def sddmm_nm_tiled(
    q: np.ndarray,
    k: np.ndarray,
    pattern=None,
    scale: Optional[float] = None,
    dtype: str = "float32",
    criterion: str = "value",
    mtile: int = 128,
    ntile: int = 128,
    ktile: int = 32,
    traffic: Optional[SddmmTraffic] = None,
    block_mask: Optional[BlockedEllMask] = None,
) -> NMSparseMatrix:
    """Tile-by-tile SDDMM mirroring the CUDA kernel's blocking.

    The output is identical to :func:`sddmm_nm`; the point of this variant is
    (a) to demonstrate that the pruning epilogue only ever needs the registers
    of one output tile, and (b) to count the DRAM traffic the kernel performs,
    which the analytical model in :mod:`repro.gpusim` must reproduce.

    Only 2-D (single head) inputs are supported; batching is the caller's
    loop, exactly as ``blockIdx.z`` is in the kernel.
    """
    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    if q.ndim != 2 or k.ndim != 2:
        raise ValueError("sddmm_nm_tiled expects 2-D Q and K (loop over heads outside)")
    n_q, d = q.shape
    n_k, d_k = k.shape
    if d != d_k:
        raise ValueError(f"feature dims differ: {d} vs {d_k}")
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    pattern = (
        default_pattern_for_dtype(dtype) if pattern is None else resolve_pattern(pattern)
    )
    pattern.validate_length(n_k)
    dense_mask = None
    if block_mask is not None:
        dense_mask = block_mask.dense_mask(n_q, n_k)

    elem = dtype_bytes(dtype)
    kept_total = pattern.kept(n_k)
    values = np.empty((n_q, kept_total), dtype=np.float32)
    indices = np.empty((n_q, kept_total), dtype=np.int8)

    for i0 in range(0, n_q, mtile):
        i1 = min(i0 + mtile, n_q)
        for j0 in range(0, n_k, ntile):
            j1 = min(j0 + ntile, n_k)
            if (j1 - j0) % pattern.m != 0:
                raise ValueError(
                    f"tile width {j1 - j0} not divisible by M={pattern.m}; "
                    "choose ntile as a multiple of M"
                )
            # accumulate the output tile in "registers"
            acc = np.zeros((i1 - i0, j1 - j0), dtype=np.float32)
            for p0 in range(0, d, ktile):
                p1 = min(p0 + ktile, d)
                a_frag = q[i0:i1, p0:p1]
                b_frag = k[j0:j1, p0:p1]
                acc += simulate_tensor_core_matmul(a_frag, b_frag.T, dtype)
                if traffic is not None:
                    traffic.bytes_read += a_frag.size * elem + b_frag.size * elem
            acc *= scale
            if dense_mask is not None:
                acc = np.where(dense_mask[i0:i1, j0:j1], acc, MASKED_SCORE)
            # epilogue: prune the tile while it is still "in registers"
            tile_vals, tile_idx = nm_compress(acc, pattern, criterion)
            kept_cols = tile_vals.shape[-1]
            out_j0 = pattern.kept(j0)
            values[i0:i1, out_j0 : out_j0 + kept_cols] = tile_vals
            indices[i0:i1, out_j0 : out_j0 + kept_cols] = tile_idx
            if traffic is not None:
                traffic.bytes_written += tile_vals.size * elem
                # 4-bit metadata per group
                groups = (j1 - j0) // pattern.m * (i1 - i0)
                traffic.bytes_written += groups * pattern.metadata_bits_per_group // 8

    return NMSparseMatrix(
        values=values,
        indices=indices,
        pattern=pattern,
        dense_cols=n_k,
        dtype=dtype,
    )
