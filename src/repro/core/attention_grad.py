"""Analytic backward pass of compressed sparse attention, layout-generic.

The forward pipeline (SDDMM into a compressed structure → sparse softmax →
SpMM) treats the sparsity selection — the N:M epilogue's choice *or* a
mask-based mechanism's padded-CSR mask — as a constant of the graph, exactly
as the paper's kernels do.  Its gradients therefore live entirely on the
compressed nonzeros:

* ``dV = Pᵀ dO`` — a transposed SpMM over the compressed probabilities;
* ``dP = (dO Vᵀ) ∘ mask`` — an SDDMM restricted to the existing structure;
* ``dS = P ∘ (dP − rowsum(P ∘ dP))`` — the row-wise softmax Jacobian applied
  on compressed rows;
* ``dQ = dS K · scale`` and ``dK = dSᵀ Q · scale`` — an SpMM and a transposed
  SpMM reusing the same structure.

Every primitive dispatches on the :class:`~repro.core.layout.CompressedLayout`
protocol, so one registered backward serves :class:`NMSparseMatrix` and
:class:`~repro.core.padded_csr.PaddedCSRMatrix` alike — padding lanes carry
zero probability, which makes every contraction exact without special cases.

The fused ``attention_bwd`` kernel is registered with two backends:
``reference`` composes the per-slice loop oracles, ``fast`` the batched
kernels, and additionally shares the scattered dense ``dS`` tile between the
``dQ`` and ``dK`` contractions so the scatter runs once.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.backend import FAST, REFERENCE, get_kernel, register_kernel
from repro.core.layout import CompressedLayout
from repro.utils.shapes import as_batched_3d, restore_batch_shape


def softmax_grad_compressed(
    probs: np.ndarray, d_probs: np.ndarray
) -> np.ndarray:
    """Row-wise softmax Jacobian ``dS = P ∘ (dP − rowsum(P ∘ dP))``.

    Both operands are compressed ``(..., rows, kept)`` value arrays sharing
    one sparsity structure; the result has the same shape.  Rows that were
    fully masked out (all-zero probabilities, e.g. blocked-ELL sentinels or
    padded-CSR rows of length zero) yield an exactly-zero gradient.
    """
    probs = np.asarray(probs, dtype=np.float32)
    d_probs = np.asarray(d_probs, dtype=np.float32)
    inner = np.sum(probs * d_probs, axis=-1, keepdims=True)
    return probs * (d_probs - inner)


def masked_attention_bwd(
    probs: CompressedLayout,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    d_out: np.ndarray,
    scale: float,
    drop_keep: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients ``(dQ, dK, dV)`` of the compressed attention forward.

    Parameters
    ----------
    probs:
        Compressed softmax probabilities (pre-dropout) in any
        :class:`~repro.core.layout.CompressedLayout` — the N:M structure
        chosen by the forward SDDMM epilogue or the padded-CSR structure of
        a mask-based mechanism.
    q, k, v:
        The forward operands, ``(..., seq, d)``.
    d_out:
        Upstream gradient of the attention output, same shape as the output.
    scale:
        The score scale applied inside the forward SDDMM (``1/sqrt(d)``).
    drop_keep:
        Optional inverted-dropout keep mask over the compressed probabilities
        (``keep / (1 - p)`` scaling already applied), or ``None``.
    out:
        Optional forward output (post-dropout).  When provided, backends may
        use the identity ``rowsum(P ∘ dP) = rowsum(dO ∘ O)`` to evaluate the
        softmax Jacobian's row inner products on the ``(..., seq, d)`` output
        instead of the ``(..., seq_q, seq_k)`` probabilities.
    backend:
        Kernel backend ("reference" or "fast"); defaults to ``$REPRO_BACKEND``,
        else "fast".
    """
    return get_kernel("attention_bwd", backend)(
        probs, q, k, v, d_out, scale, drop_keep, out
    )


#: Backwards-compatible name from when the compressed backward only handled
#: the N:M layout of the DFSS path.
dfss_attention_bwd = masked_attention_bwd


def _compose_bwd(
    probs: CompressedLayout,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    d_out: np.ndarray,
    scale: float,
    drop_keep: Optional[np.ndarray],
    backend: str,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass written purely in terms of the registered primitives."""
    spmm = get_kernel("spmm", backend)
    spmm_t = get_kernel("spmm_t", backend)
    sddmm_masked = get_kernel("sddmm_masked", backend)

    applied = probs if drop_keep is None else probs.with_values(probs.values * drop_keep)
    d_v = spmm_t(applied, d_out)
    d_probs = sddmm_masked(d_out, np.asarray(v, dtype=np.float32), probs).values
    if drop_keep is not None:
        d_probs = d_probs * drop_keep
    d_scores = probs.with_values(softmax_grad_compressed(probs.values, d_probs))
    d_q = spmm(d_scores, np.asarray(k, dtype=np.float32)) * np.float32(scale)
    d_k = spmm_t(d_scores, np.asarray(q, dtype=np.float32)) * np.float32(scale)
    return d_q, d_k, d_v


@register_kernel("attention_bwd", REFERENCE)
def _attention_bwd_reference(
    probs: CompressedLayout,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    d_out: np.ndarray,
    scale: float,
    drop_keep: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Loop oracle: the per-slice reference primitives, stage by stage."""
    del out  # the oracle always evaluates the Jacobian on compressed rows
    return _compose_bwd(probs, q, k, v, d_out, scale, drop_keep, REFERENCE)


@register_kernel("attention_bwd", FAST)
def _attention_bwd_fast(
    probs: CompressedLayout,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    d_out: np.ndarray,
    scale: float,
    drop_keep: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched backward reusing the forward's scattered probability tile.

    Equivalent to composing the fast primitives, but the CPU stand-in for the
    metadata walk runs once per training step: the dense zero-filled tile the
    forward SpMM scattered the probabilities into is reused
    (``probs.to_scattered()``), after which every step is plain BLAS and
    elementwise algebra.  The zeros at pruned/padded positions make the dense
    formulation exact — ``P ∘ (dP − rowsum(P ∘ dP))`` vanishes wherever ``P``
    was pruned, so no gather of ``dP`` back to the compressed layout is
    needed before the ``dQ``/``dK`` contractions.  When the forward output is
    available the Jacobian's row inner products use
    ``rowsum(P ∘ dP) = rowsum(dO ∘ O)``, which reads the narrow output matrix
    instead of a second pass over the score-shaped tile.
    """
    q3, batch_shape = as_batched_3d(np.asarray(q, dtype=np.float32))
    k3, _ = as_batched_3d(np.asarray(k, dtype=np.float32))
    v3, _ = as_batched_3d(np.asarray(v, dtype=np.float32))
    g3, _ = as_batched_3d(np.asarray(d_out, dtype=np.float32))

    p_dense, _ = as_batched_3d(probs.to_scattered())
    if drop_keep is None:
        applied_dense = p_dense
        keep_dense = None
    else:
        keep = np.asarray(drop_keep, dtype=np.float32)
        applied_dense, _ = as_batched_3d(probs.scatter_compressed(probs.values * keep))
        keep_dense, _ = as_batched_3d(probs.scatter_compressed(keep))

    # dV = Pᵀ dO (P after dropout)
    d_v = np.matmul(np.swapaxes(applied_dense, -1, -2), g3)

    # dP = (dO Vᵀ) ∘ mask — the ∘ mask is implicit: dS multiplies by P below,
    # and P is exactly zero at pruned/padded positions
    d_probs = np.matmul(g3, np.swapaxes(v3, -1, -2))
    if keep_dense is not None:
        d_probs = d_probs * keep_dense

    # softmax Jacobian and the two remaining contractions, scale folded once
    if out is not None:
        out3, _ = as_batched_3d(np.asarray(out, dtype=np.float32))
        inner = np.sum(g3 * out3, axis=-1, keepdims=True)
    else:
        inner = np.sum(p_dense * d_probs, axis=-1, keepdims=True)
    ds_dense = p_dense * (d_probs - inner)
    ds_dense *= np.float32(scale)
    d_q = np.matmul(ds_dense, k3)
    d_k = np.matmul(np.swapaxes(ds_dense, -1, -2), q3)
    return (
        restore_batch_shape(d_q, batch_shape),
        restore_batch_shape(d_k, batch_shape),
        restore_batch_shape(d_v, batch_shape),
    )
