"""Hybrid blocked-ELL + N:M sparsity (Appendix A.1.2, "Blocked-ELL Sparsity").

For very long sequences the paper combines the 50% fine-grained structured
sparsity with a coarse blocked-ELL pattern: the attention matrix is divided
into square blocks (block size = the GEMM thread-block tile) and only a fixed
number of blocks per block-row is ever computed; the surviving blocks are then
pruned to N:M as usual.  This gives BigBird-style asymptotic savings while
keeping the fine-grained selection inside each block.

:class:`BlockedEllMask` represents the coarse pattern: for every block-row, a
fixed-length list of block-column indices (the ELL format).  Helper
constructors build the sliding-window / global-token / random-block layouts
used by BigBird and Longformer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.utils.seeding import new_rng


@dataclass
class BlockedEllMask:
    """Blocked-ELL sparsity pattern over a ``(rows, cols)`` matrix.

    Attributes
    ----------
    block_size:
        Edge length of the square blocks.
    block_columns:
        Integer array of shape ``(block_rows, ell_cols)``: for each block-row,
        the block-column indices that are kept.  ``-1`` marks an unused slot
        (ragged rows are padded with ``-1``).
    """

    block_size: int
    block_columns: np.ndarray

    def __post_init__(self) -> None:
        self.block_columns = np.asarray(self.block_columns, dtype=np.int64)
        if self.block_columns.ndim != 2:
            raise ValueError("block_columns must be 2-D (block_rows, ell_cols)")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")

    @property
    def block_rows(self) -> int:
        return self.block_columns.shape[0]

    @property
    def ell_cols(self) -> int:
        return self.block_columns.shape[1]

    def density(self, total_block_cols: int) -> float:
        """Fraction of blocks kept, ignoring padded ``-1`` slots."""
        valid = self.block_columns >= 0
        return float(valid.sum()) / (self.block_rows * total_block_cols)

    def dense_mask(self, rows: int, cols: int) -> np.ndarray:
        """Boolean dense mask of shape ``(rows, cols)`` for the kept blocks."""
        if rows % self.block_size or cols % self.block_size:
            raise ValueError(
                f"matrix shape ({rows}, {cols}) is not divisible by block size "
                f"{self.block_size}"
            )
        block_rows = rows // self.block_size
        block_cols = cols // self.block_size
        if block_rows != self.block_rows:
            raise ValueError(
                f"mask has {self.block_rows} block rows but the matrix needs {block_rows}"
            )
        mask = np.zeros((block_rows, block_cols), dtype=bool)
        for br in range(block_rows):
            for bc in self.block_columns[br]:
                if bc < 0:
                    continue
                if bc >= block_cols:
                    raise ValueError(
                        f"block column {bc} out of range for {block_cols} block columns"
                    )
                mask[br, bc] = True
        return np.kron(mask, np.ones((self.block_size, self.block_size), dtype=bool))

    def iter_blocks(self) -> Iterable:
        """Yield ``(block_row, block_col)`` pairs of kept blocks."""
        for br in range(self.block_rows):
            for bc in self.block_columns[br]:
                if bc >= 0:
                    yield br, int(bc)


def _pad_rows(rows: Sequence[Sequence[int]]) -> np.ndarray:
    width = max((len(r) for r in rows), default=0)
    out = np.full((len(rows), max(width, 1)), -1, dtype=np.int64)
    for i, r in enumerate(rows):
        uniq = sorted(set(int(c) for c in r))
        out[i, : len(uniq)] = uniq
    return out


def sliding_window_mask(
    seq_len: int, block_size: int, window_blocks: int = 1
) -> BlockedEllMask:
    """Sliding-window blocked mask: each block-row keeps its ``window_blocks`` neighbours."""
    if seq_len % block_size:
        raise ValueError("seq_len must be divisible by block_size")
    block_rows = seq_len // block_size
    rows = []
    for br in range(block_rows):
        lo = max(0, br - window_blocks)
        hi = min(block_rows, br + window_blocks + 1)
        rows.append(list(range(lo, hi)))
    return BlockedEllMask(block_size, _pad_rows(rows))


def global_tokens_mask(
    seq_len: int, block_size: int, num_global_blocks: int = 1
) -> BlockedEllMask:
    """Global-attention blocks: the first ``num_global_blocks`` block rows/columns are dense."""
    if seq_len % block_size:
        raise ValueError("seq_len must be divisible by block_size")
    block_rows = seq_len // block_size
    rows = []
    for br in range(block_rows):
        cols = set(range(min(num_global_blocks, block_rows)))
        if br < num_global_blocks:
            cols.update(range(block_rows))
        cols.add(br)  # always keep the diagonal block
        rows.append(sorted(cols))
    return BlockedEllMask(block_size, _pad_rows(rows))


def bigbird_mask(
    seq_len: int,
    block_size: int,
    window_blocks: int = 1,
    num_global_blocks: int = 1,
    num_random_blocks: int = 1,
    seed=None,
) -> BlockedEllMask:
    """BigBird-style mask: sliding window + global blocks + random blocks."""
    if seq_len % block_size:
        raise ValueError("seq_len must be divisible by block_size")
    rng = new_rng(seed)
    block_rows = seq_len // block_size
    rows = []
    for br in range(block_rows):
        cols = set()
        lo = max(0, br - window_blocks)
        hi = min(block_rows, br + window_blocks + 1)
        cols.update(range(lo, hi))
        cols.update(range(min(num_global_blocks, block_rows)))
        if br < num_global_blocks:
            cols.update(range(block_rows))
        candidates = [c for c in range(block_rows) if c not in cols]
        if candidates and num_random_blocks > 0:
            picks = rng.choice(
                candidates, size=min(num_random_blocks, len(candidates)), replace=False
            )
            cols.update(int(p) for p in np.atleast_1d(picks))
        rows.append(sorted(cols))
    return BlockedEllMask(block_size, _pad_rows(rows))


def full_mask(seq_len: int, block_size: int) -> BlockedEllMask:
    """Degenerate mask keeping every block (pure N:M sparsity)."""
    if seq_len % block_size:
        raise ValueError("seq_len must be divisible by block_size")
    block_rows = seq_len // block_size
    rows = [list(range(block_rows)) for _ in range(block_rows)]
    return BlockedEllMask(block_size, _pad_rows(rows))
