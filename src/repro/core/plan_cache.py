"""LRU bookkeeping for compiled attention plans.

Pure accounting — an ordered mapping of cache keys to compiled plans plus
hit/miss/eviction counters — split out of :mod:`repro.core.plan` so the
aliasing analyzer's buffer-reuse scope stays focused on the modules that
actually touch numpy memory.  The cache never inspects a plan; compilation
is delegated to the ``build`` callable injected at construction.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Generic, Hashable, TypeVar

from repro.profile.tracer import current_tracer

__all__ = ["PlanCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class PlanCache(Generic[K, V]):
    """LRU cache of compiled plans with hit/miss/eviction accounting.

    While a trace session is active every lookup additionally emits a
    ``plan_cache_hit`` / ``plan_cache_miss`` instant event, so cache
    behaviour is visible on the timeline next to the kernels it affects.
    Keys are expected to carry ``mechanism`` / ``backend`` attributes (the
    :class:`~repro.core.plan.PlanKey` fields stamped on those events).

    Thread-safe: the multicore backend's worker pool made concurrent lookups
    a reality, so the counters and the OrderedDict recency updates are
    guarded by an ``RLock``.  A cold key may still be built more than once
    under a race (compilation is pure and idempotent — last write wins); the
    LRU state itself can never corrupt.
    """

    def __init__(self, build: Callable[[K], V], max_entries: int = 64) -> None:
        self._build = build
        self.max_entries = int(max_entries)
        self._plans: "OrderedDict[K, V]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def get(self, key: K) -> V:
        tracer = current_tracer()
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if plan is not None:
            if tracer is not None:
                tracer.instant(
                    "plan_cache_hit", "cache",
                    mechanism=key.mechanism, backend=key.backend,
                )
            return plan
        if tracer is not None:
            tracer.instant(
                "plan_cache_miss", "cache",
                mechanism=key.mechanism, backend=key.backend,
            )
        # Build outside the lock: compilation can recurse into the registry
        # (and, for delegating backends, into this very cache).
        plan = self._build(key)
        with self._lock:
            self._plans[key] = plan
            while len(self._plans) > self.max_entries:
                self._plans.popitem(last=False)
                self.evictions += 1
        return plan

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = self.misses = self.evictions = 0

    def stats(self) -> Dict[str, int]:
        """``{"size", "hits", "misses", "evictions"}`` since the last clear."""
        with self._lock:
            return {
                "size": len(self._plans),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
