"""Attention Lottery Ticket quality metric ``Q_p`` (Section 4, Proposition 4.2).

``Q_p`` measures how much of the L_p mass of each attention-weight row a
sparsity mask preserves:

    ``Q_p = (1/n) * sum_j  sum_i (m ⊙ A)^p_{j,i} / sum_i A^p_{j,i}``

The module provides both the closed-form values of Proposition 4.2 (under the
i.i.d. Gaussian score assumption) and empirical estimators that evaluate the
metric on real attention matrices, for the four mask families compared in the
paper: Top-K, fixed (uniform), dynamic 1:2 and dynamic 2:4.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erf, erfinv

from repro.core.patterns import resolve_pattern
from repro.core.pruning import nm_prune_mask
from repro.utils.seeding import new_rng


# --------------------------------------------------------------------------- theory
def qp_topk_theory(density: float, p: float, sigma: float = 1.0) -> float:
    """Closed-form ``Q_p`` of Top-K sparsity at density ``s`` (Prop. 4.2).

    ``Q_p = (1 + erf(p*sigma/sqrt(2) - erfinv(1 - 2s))) / 2``.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    if density == 1.0:
        return 1.0
    return float((1.0 + erf(p * sigma / np.sqrt(2.0) - erfinv(1.0 - 2.0 * density))) / 2.0)


def qp_fixed_theory(density: float) -> float:
    """Closed-form ``Q_p`` of a fixed (data-independent) pattern: ``Q_p = s``."""
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    return float(density)


def qp_1_2_theory(p: float, sigma: float = 1.0) -> float:
    """Closed-form ``Q_p`` of dynamic 1:2 sparsity: ``(1 + erf(p*sigma/2)) / 2``."""
    return float((1.0 + erf(p * sigma / 2.0)) / 2.0)


def qp_2_4_lower_bound(p: float, sigma: float = 1.0) -> float:
    """Lower bound for dynamic 2:4 sparsity (Prop. 4.2): ``Q_p(2:4) >= Q_p(1:2)``."""
    return qp_1_2_theory(p, sigma)


def qp_nm_monte_carlo(
    pattern,
    p: float,
    sigma: float = 1.0,
    mu: float = 0.0,
    rows: int = 2048,
    cols: int = 1024,
    seed=0,
) -> float:
    """Monte-Carlo estimate of ``Q_p`` for any N:M pattern under i.i.d. N(mu, sigma) scores.

    Useful for the exact 2:4 value (the paper only derives a lower bound) and
    for ratios beyond 1:2 / 2:4.
    """
    pattern = resolve_pattern(pattern)
    rng = new_rng(seed)
    scores = rng.normal(mu, sigma, size=(rows, cols)).astype(np.float32)
    return qp_empirical_from_scores(scores, nm_prune_mask(scores, pattern), p)


def topk_crossover_pstd(density: float) -> float:
    """The ``p*sigma`` value at which Top-K at density ``s`` matches ``Q_p`` of 1:2.

    Solves ``erf(x/sqrt(2) - erfinv(1-2s)) = erf(x/2)`` for ``x = p*sigma``;
    the paper quotes ``p*sigma ≈ 7`` for the Top-K density (s ≈ 0.02) that has
    the same efficiency as 1:2.
    """
    if not 0.0 < density < 0.5:
        raise ValueError("crossover is only defined for density in (0, 0.5)")
    c = float(erfinv(1.0 - 2.0 * density))
    # erf is monotonic: equality requires x/sqrt(2) - c = x/2  =>  x = c / (1/sqrt(2) - 1/2)
    return c / (1.0 / np.sqrt(2.0) - 0.5)


# ------------------------------------------------------------------------ empirical
def qp_empirical(attention: np.ndarray, mask: np.ndarray, p: float) -> float:
    """Empirical ``Q_p`` of a mask applied to an attention-*weight* matrix.

    ``attention`` holds softmax weights (rows sum to one); ``mask`` is a
    boolean array of the same shape.  Both may carry leading batch dimensions,
    which are averaged over (the definition already averages over rows).
    """
    attention = np.asarray(attention, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if attention.shape != mask.shape:
        raise ValueError(
            f"attention shape {attention.shape} != mask shape {mask.shape}"
        )
    powered = attention**p
    denom = powered.sum(axis=-1)
    numer = (powered * mask).sum(axis=-1)
    safe = denom > 0
    ratios = np.where(safe, numer / np.where(safe, denom, 1.0), 1.0)
    return float(ratios.mean())


def qp_empirical_from_scores(scores: np.ndarray, mask: np.ndarray, p: float) -> float:
    """Empirical ``Q_p`` computed from raw scores (softmax applied internally)."""
    scores = np.asarray(scores, dtype=np.float64)
    shifted = scores - scores.max(axis=-1, keepdims=True)
    weights = np.exp(shifted)
    weights /= weights.sum(axis=-1, keepdims=True)
    return qp_empirical(weights, mask, p)


# ---------------------------------------------------------------------- mask builders
def topk_mask(scores: np.ndarray, density: float) -> np.ndarray:
    """Per-row Top-K mask keeping ``ceil(density * n)`` largest scores."""
    scores = np.asarray(scores, dtype=np.float32)
    n = scores.shape[-1]
    k = max(1, int(np.ceil(density * n)))
    # indices of the k largest per row
    part = np.argpartition(-scores, kth=k - 1, axis=-1)[..., :k]
    mask = np.zeros(scores.shape, dtype=bool)
    np.put_along_axis(mask, part, True, axis=-1)
    return mask


def fixed_mask(shape, density: float, kind: str = "truncate") -> np.ndarray:
    """Data-independent mask at a given density.

    ``kind="truncate"`` keeps the first ``density * n`` columns (the scheme
    used for the fixed-sparsity speedup measurement in Appendix A.4);
    ``kind="strided"`` keeps every ``round(1/density)``-th column.
    """
    shape = tuple(shape)
    n = shape[-1]
    mask = np.zeros(shape, dtype=bool)
    if kind == "truncate":
        k = max(1, int(round(density * n)))
        mask[..., :k] = True
    elif kind == "strided":
        stride = max(1, int(round(1.0 / density)))
        mask[..., ::stride] = True
    else:
        raise ValueError(f"unknown fixed mask kind {kind!r}")
    return mask


def nm_mask(scores: np.ndarray, pattern, criterion: str = "value") -> np.ndarray:
    """Dynamic N:M mask of a score matrix (thin wrapper over the pruning module)."""
    return nm_prune_mask(scores, pattern, criterion)


def frobenius_retention(attention: np.ndarray, mask: np.ndarray) -> float:
    """The baseline metric ``||A - m⊙A||_F^2 / ||A||_F^2`` compared against in Fig. 13(b).

    Lower is better for the baseline metric (it measures *lost* mass); the
    paper argues ``Q_p`` orders sparse patterns more faithfully.
    """
    attention = np.asarray(attention, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    lost = attention * (~mask)
    denom = float((attention**2).sum())
    if denom == 0:
        return 0.0
    return float((lost**2).sum() / denom)
