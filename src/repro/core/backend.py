"""Pluggable kernel backend registry.

The attention pipeline is built from a small number of named kernels —
``sddmm_nm`` (fused SDDMM + N:M prune), ``masked_softmax`` (softmax over the
compressed nonzeros), ``spmm`` (compressed-weights x dense V), the fused
``softmax_spmm`` epilogue and the ``nm_prune_mask`` selection used by the
trainable layer.  Each kernel can have several interchangeable
implementations ("backends") registered against it:

* ``reference`` — the tile-by-tile / per-slice loop implementations that
  mirror the CUDA kernels' structure.  They are slow but transparent and act
  as the numerical oracle for every other backend.
* ``fast`` — fully batched implementations with no Python-level loops over
  batch or head dimensions, used by default everywhere.

Backend selection, in decreasing priority:

1. the ``backend=...`` argument accepted by every dispatching entry point;
2. an active :func:`use_backend` context;
3. the ``REPRO_BACKEND`` environment variable;
4. the default, ``"fast"``.

Registering a new backend is a one-liner::

    from repro.core.backend import register_kernel

    @register_kernel("spmm", "gpu")
    def spmm_gpu(weights, v):
        ...

after which ``spmm(w, v, backend="gpu")`` (or ``REPRO_BACKEND=gpu``) picks
it up without touching any call site.

Backends additionally provide *plan builders*: callables that compile a
:class:`~repro.core.plan.AttentionPlan` for a given plan key, resolving every
kernel lookup once instead of per call.  ``register_plan_builder`` /
``get_plan_builder`` mirror the kernel registry and are the seam a future
multicore-tiling backend plugs into — a new backend registers one builder and
every layer (autograd op, engine, serving executor, bench) picks it up.
"""

from __future__ import annotations

import difflib
import functools
import importlib
import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.profile.tracer import current_tracer

#: Canonical backend names shipped with the repository.
REFERENCE = "reference"
FAST = "fast"
MULTICORE = "multicore"
KNOWN_BACKENDS = (REFERENCE, FAST, MULTICORE)

#: Backend used when neither an argument, a context, nor the environment
#: variable selects one.
DEFAULT_BACKEND = FAST

#: Environment variable consulted by :func:`resolve_backend`.
ENV_VAR = "REPRO_BACKEND"

_REGISTRY: Dict[str, Dict[str, Callable]] = {}
_OVERRIDE: Optional[str] = None

_PLAN_BUILDERS: Dict[str, Callable] = {}

#: Staged-kernel fallbacks: a backend whose value lies entirely in its plan
#: builder (multicore tiles *plans*, not individual kernels) delegates any
#: kernel it does not register itself to the listed backend, so every staged
#: entry point stays valid under ``REPRO_BACKEND=multicore``.
_KERNEL_FALLBACKS: Dict[str, str] = {MULTICORE: FAST}

#: Backends whose plan builder lives in a module imported on first use —
#: nothing imports :mod:`repro.core.multicore` at package-import time, so the
#: registration happens lazily when the backend is first asked for a plan.
_DEFERRED_BUILDER_MODULES: Dict[str, str] = {MULTICORE: "repro.core.multicore"}


def register_kernel(kernel: str, backend: str) -> Callable[[Callable], Callable]:
    """Decorator registering ``fn`` as the ``backend`` implementation of ``kernel``."""

    def decorator(fn: Callable) -> Callable:
        _REGISTRY.setdefault(kernel, {})[backend] = fn
        return fn

    return decorator


def available_kernels() -> Tuple[str, ...]:
    """Names of all kernels with at least one registered backend."""
    return tuple(sorted(_REGISTRY))


def available_backends(kernel: Optional[str] = None) -> Tuple[str, ...]:
    """Backends registered for ``kernel``, or across all kernels when omitted."""
    if kernel is not None:
        return tuple(sorted(_REGISTRY.get(kernel, {})))
    names = set(KNOWN_BACKENDS)
    for impls in _REGISTRY.values():
        names.update(impls)
    return tuple(sorted(names))


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend name from argument, context, environment, or default.

    Raises ``ValueError`` with the list of valid names for typos such as
    ``REPRO_BACKEND=fats``.
    """
    if backend is None:
        backend = _OVERRIDE
    if backend is None:
        backend = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    name = str(backend).strip().lower()
    valid = available_backends()
    if name not in valid:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {'|'.join(valid)} "
            f"(selectable via a backend= argument or ${ENV_VAR})"
        )
    return name


def get_kernel(kernel: str, backend: Optional[str] = None) -> Callable:
    """Look up the implementation of ``kernel`` for the resolved ``backend``.

    Raises ``KeyError`` for an unregistered kernel name (with a did-you-mean
    hint and the full registered list) and ``ValueError`` for a kernel that
    has no implementation under the resolved backend (listing the backends it
    does have and how to select one).
    """
    if kernel not in _REGISTRY:
        names = available_kernels()
        close = difflib.get_close_matches(str(kernel), names, n=3)
        hint = f" — did you mean {' or '.join(repr(c) for c in close)}?" if close else ""
        raise KeyError(
            f"unknown kernel {kernel!r}{hint}; registered kernels: "
            f"{', '.join(names) if names else 'none'}"
        )
    name = resolve_backend(backend)
    impls = _REGISTRY[kernel]
    if name not in impls and name in _KERNEL_FALLBACKS:
        name = _KERNEL_FALLBACKS[name]
    if name not in impls:
        raise ValueError(
            f"kernel {kernel!r} has no {name!r} backend; available backends "
            f"for it: {', '.join(sorted(impls)) if impls else 'none'} "
            f"(select one via a backend= argument, use_backend(), or ${ENV_VAR})"
        )
    fn = impls[name]
    if current_tracer() is None:
        # Disabled fast path: hand back the registered function itself, so
        # untraced runs keep both zero overhead and function identity.
        return fn
    return _tracing_wrapper(kernel, name, fn)


def _arg_shape(args: Tuple, kwargs: Dict) -> Optional[str]:
    """``"2x4x256x64"`` for the first array-like argument, if any."""
    for value in (*args, *kwargs.values()):
        shape = getattr(value, "shape", None)
        if isinstance(shape, tuple):
            return "x".join(str(d) for d in shape)
    return None


def _tracing_wrapper(kernel: str, backend: str, fn: Callable) -> Callable:
    """Wrap a registered kernel so each call emits a ``cat="kernel"`` span.

    Only built while a trace session is active; the plan cache is cleared at
    session start/stop (see :mod:`repro.core.plan`), so plans compiled before
    or after a session never hold one of these wrappers.
    """

    @functools.wraps(fn)
    def traced(*args, **kwargs):
        tracer = current_tracer()
        if tracer is None:
            return fn(*args, **kwargs)
        start = tracer._now_us()
        try:
            return fn(*args, **kwargs)
        finally:
            tracer.emit_complete(
                kernel,
                "kernel",
                start,
                tracer._now_us() - start,
                {"backend": backend, "shape": _arg_shape(args, kwargs)},
            )

    traced.__wrapped__ = fn
    return traced


def register_plan_builder(backend: str) -> Callable[[Callable], Callable]:
    """Decorator registering ``fn`` as the plan builder for ``backend``.

    A plan builder takes a :class:`~repro.core.plan.PlanKey` and returns a
    compiled :class:`~repro.core.plan.AttentionPlan` with every kernel lookup
    already resolved.
    """

    def decorator(fn: Callable) -> Callable:
        _PLAN_BUILDERS[backend] = fn
        return fn

    return decorator


def available_plan_backends() -> Tuple[str, ...]:
    """Backends that provide a compiled-plan builder."""
    return tuple(sorted(_PLAN_BUILDERS))


def get_plan_builder(backend: Optional[str] = None) -> Callable:
    """Look up the plan builder for the resolved ``backend``."""
    name = resolve_backend(backend)
    if name not in _PLAN_BUILDERS and name in _DEFERRED_BUILDER_MODULES:
        # Importing the module runs its ``@register_plan_builder`` decorator.
        importlib.import_module(_DEFERRED_BUILDER_MODULES[name])
    if name not in _PLAN_BUILDERS:
        raise ValueError(
            f"backend {name!r} provides no plan builder; "
            f"available: {available_plan_backends()}"
        )
    return _PLAN_BUILDERS[name]


@contextmanager
def use_backend(backend: str) -> Iterator[None]:
    """Context manager selecting ``backend`` for every dispatch inside the block.

    Explicit ``backend=`` arguments still win; the environment variable is
    shadowed for the duration of the block.
    """
    global _OVERRIDE
    name = str(backend).strip().lower()
    valid = available_backends()
    if name not in valid:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {'|'.join(valid)}"
        )
    previous = _OVERRIDE
    _OVERRIDE = name
    try:
        yield
    finally:
        _OVERRIDE = previous
