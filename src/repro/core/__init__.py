"""DFSS core: dynamic N:M fine-grained structured sparse attention.

This package implements the paper's primary contribution:

* :mod:`repro.core.backend` — the pluggable kernel registry dispatching every
  hot kernel to a ``reference`` (tile-by-tile/loop oracle) or ``fast``
  (batched, loop-free) implementation, selectable per call or via
  ``$REPRO_BACKEND``;
* :mod:`repro.core.patterns` / :mod:`repro.core.pruning` — the dynamic N:M
  selection rule;
* :mod:`repro.core.metadata` / :mod:`repro.core.sparse` — the compressed
  (nonzeros, metadata) representation consumed by sparse-tensor-core SpMM;
* :mod:`repro.core.sddmm`, :mod:`repro.core.softmax`, :mod:`repro.core.spmm` —
  the three attention stages with the fused pruning epilogue;
* :mod:`repro.core.plan` — the compiled plan/execute layer: an
  :class:`AttentionPlan` built once per (mechanism, layout, backend, dtype,
  shape-class) runs the fused sddmm → masked-softmax → spmm chain (and its
  fused backward) as the one execution entry point every layer shares;
* :mod:`repro.core.attention` — the ``full_attention`` / ``dfss_attention``
  public API and the :class:`DfssAttention` drop-in object;
* :mod:`repro.core.attention_grad` — the analytic backward pass of DFSS
  attention on the compressed representation (transposed SpMM, masked SDDMM,
  compressed softmax Jacobian);
* :mod:`repro.core.lottery`, :mod:`repro.core.theory`, :mod:`repro.core.mse` —
  the analytical results of Section 4 and the appendices;
* :mod:`repro.core.blocked_ell` — hybrid blocked-ELL + N:M sparsity.
"""

import warnings as _warnings

from repro.core.attention import DfssAttention, dfss_attention, full_attention
from repro.core.attention_grad import (
    masked_attention_bwd,
    softmax_grad_compressed,
)
from repro.core.backend import (
    available_backends,
    available_kernels,
    available_plan_backends,
    get_kernel,
    get_plan_builder,
    register_kernel,
    register_plan_builder,
    resolve_backend,
    use_backend,
)
from repro.core.plan import (
    AttentionPlan,
    PlanKey,
    build_plan,
    clear_plan_cache,
    plan_cache_stats,
    plan_for_nm,
    plan_for_structure,
    resolve_pipeline,
    use_pipeline,
)
from repro.core.blocked_ell import (
    BlockedEllMask,
    bigbird_mask,
    full_mask,
    global_tokens_mask,
    sliding_window_mask,
)
from repro.core.patterns import (
    NMPattern,
    PATTERN_1_2,
    PATTERN_2_4,
    default_pattern_for_dtype,
    resolve_pattern,
)
from repro.core.layout import CompressedLayout, dense_positions
from repro.core.padded_csr import PaddedCSRMatrix
from repro.core.precision import quantize, simulate_tensor_core_matmul, to_bfloat16
from repro.core.pruning import nm_compress, nm_decompress, nm_prune_dense, nm_prune_mask
from repro.core.sddmm import sddmm_csr, sddmm_dense, sddmm_masked, sddmm_nm, sddmm_nm_tiled
from repro.core.softmax import dense_softmax, sparse_softmax
from repro.core.sparse import NMSparseMatrix
from repro.core.spmm import spmm, spmm_t

#: Staged kernel entry points the compiled AttentionPlan subsumes: importing
#: them from ``repro.core`` warns once and forwards to their submodule homes.
_DEPRECATED_STAGED = {
    "softmax_spmm": (
        "repro.core.spmm",
        "repro.core.softmax_spmm is deprecated; the compiled AttentionPlan "
        "(repro.core.plan) fuses softmax+SpMM with bitwise-stable semantics — "
        "import repro.core.spmm.softmax_spmm directly if you need the legacy "
        "divide-after-contraction kernel",
    ),
    "dfss_attention_bwd": (
        "repro.core.attention_grad",
        "repro.core.dfss_attention_bwd is deprecated; use "
        "repro.core.masked_attention_bwd (or AttentionPlan.backward) instead",
    ),
}
_WARNED_STAGED = set()


def __getattr__(name):
    try:
        module_name, message = _DEPRECATED_STAGED[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    if name not in _WARNED_STAGED:
        _WARNED_STAGED.add(name)
        _warnings.warn(message, DeprecationWarning, stacklevel=2)
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "DfssAttention",
    "dfss_attention",
    "dfss_attention_bwd",
    "masked_attention_bwd",
    "full_attention",
    "softmax_grad_compressed",
    "CompressedLayout",
    "dense_positions",
    "PaddedCSRMatrix",
    "available_backends",
    "available_kernels",
    "available_plan_backends",
    "get_kernel",
    "get_plan_builder",
    "register_kernel",
    "register_plan_builder",
    "resolve_backend",
    "use_backend",
    "AttentionPlan",
    "PlanKey",
    "build_plan",
    "clear_plan_cache",
    "plan_cache_stats",
    "plan_for_nm",
    "plan_for_structure",
    "resolve_pipeline",
    "use_pipeline",
    "BlockedEllMask",
    "bigbird_mask",
    "full_mask",
    "global_tokens_mask",
    "sliding_window_mask",
    "NMPattern",
    "PATTERN_1_2",
    "PATTERN_2_4",
    "default_pattern_for_dtype",
    "resolve_pattern",
    "quantize",
    "simulate_tensor_core_matmul",
    "to_bfloat16",
    "nm_compress",
    "nm_decompress",
    "nm_prune_dense",
    "nm_prune_mask",
    "sddmm_csr",
    "sddmm_dense",
    "sddmm_masked",
    "sddmm_nm",
    "sddmm_nm_tiled",
    "dense_softmax",
    "sparse_softmax",
    "NMSparseMatrix",
    "softmax_spmm",
    "spmm",
    "spmm_t",
]
