"""Multicore tiled backend: thread-pool execution of compiled plans.

The ``fast`` backend runs the fused sddmm → masked-softmax → spmm chain as
single whole-batch numpy calls; everything beyond one core sits idle.  This
module registers a third backend, ``multicore``, whose plan builder returns a
:class:`MulticoreAttentionPlan`: the same compiled chain, executed as
independent tiles over the flattened batch×head dimension on a persistent
worker pool.  Each tile runs the *existing single-core fast kernels* on
contiguous zero-copy slices of the inputs and writes its result into a
disjoint slice of a preallocated output buffer.

**Bitwise parity with ``fast`` is a hard invariant, not a tolerance.**  Every
fast kernel in the chain is per-leading-slice independent — batched BLAS
matmuls dispatch one GEMM per slice, and every reduction runs over trailing
extents the slice itself fixes — so tiling the leading dimension cannot
perturb a bit.  The one genuine hazard is the masked softmax's *dispatch*:
its chunked and segmented passes sum row denominators in different orders,
and the auto dispatch keys on ``lengths.min()``, which a tile sees locally.
The tiled softmax therefore decides the branch once on the global lengths
and pins it for every tile (``masked_softmax_values(..., segmented=...)``).

Threads are the default worker flavour: the hot kernels are BLAS/ufunc
dominated and release the GIL.  ``REPRO_MULTICORE_MODE=process`` keeps a
process-pool escape hatch for GIL-bound workloads — the end-to-end forward
ships each tile to a child process that rebuilds the single-core fast plan
from the picklable :class:`~repro.core.plan.PlanKey`; staged stage calls and
the backward always use threads.

Knobs:

* ``REPRO_MULTICORE_WORKERS`` — worker count (default ``os.cpu_count()``).
  ``1`` degenerates to inline single-core execution, bit-for-bit the ``fast``
  backend with zero pool involvement.
* ``REPRO_MULTICORE_MODE`` — ``thread`` (default) or ``process``.

Scheduling: tiles are contiguous slices (zero-copy views) of the flattened
batch dimension, cost-balanced by per-slice nnz for ragged CSR structures
(uniform otherwise), oversubscribed ~4x the worker count and submitted
heaviest-first — the executor's shared queue then provides the work
stealing.  While a trace session is active each tile runs inside an
``mc_tile`` span on its worker's own tid lane (carrying the tile index,
slice range, shape, and pool size), with the submitting thread's phase and
plan labels re-applied so worker-lane events stay attributable.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.sanitize import check_grads, check_output, freeze_structure, guard_input
from repro.core.backend import FAST, MULTICORE, register_plan_builder
from repro.core.padded_csr import PaddedCSRMatrix
from repro.core.plan import AttentionPlan, PlanKey
from repro.core.softmax import masked_softmax_values
from repro.core.sparse import NMSparseMatrix
from repro.profile.tracer import current_tracer

__all__ = [
    "WORKERS_ENV_VAR",
    "MODE_ENV_VAR",
    "WorkerPool",
    "MulticoreAttentionPlan",
    "get_pool",
    "resolve_worker_count",
    "tile_slices",
]

#: Environment variable selecting the worker count (default: ``os.cpu_count()``).
WORKERS_ENV_VAR = "REPRO_MULTICORE_WORKERS"

#: Environment variable selecting the pool flavour: ``thread`` (default) or
#: ``process`` (whole-chain forward only; the escape hatch for GIL-bound work).
MODE_ENV_VAR = "REPRO_MULTICORE_MODE"

THREAD_MODE = "thread"
PROCESS_MODE = "process"

#: Tiles submitted per worker: mild oversubscription so the executor queue
#: load-balances ragged tiles (static slicing would pin the largest tile's
#: finish time to one worker).
_OVERSUBSCRIPTION = 4


def resolve_worker_count(workers: Optional[int] = None) -> int:
    """Worker count from argument, ``$REPRO_MULTICORE_WORKERS``, or cpu count."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"${WORKERS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


def resolve_mode(mode: Optional[str] = None) -> str:
    """Pool flavour from argument or ``$REPRO_MULTICORE_MODE``."""
    if mode is None:
        mode = os.environ.get(MODE_ENV_VAR, "").strip() or THREAD_MODE
    name = str(mode).strip().lower()
    if name not in (THREAD_MODE, PROCESS_MODE):
        raise ValueError(
            f"unknown multicore mode {mode!r}; expected "
            f"{THREAD_MODE!r} or {PROCESS_MODE!r} (${MODE_ENV_VAR})"
        )
    return name


def tile_slices(
    batch: int,
    workers: int,
    costs: Optional[np.ndarray] = None,
    oversubscription: int = _OVERSUBSCRIPTION,
) -> List[slice]:
    """Contiguous cost-balanced slices of ``range(batch)``.

    Contiguity keeps every tile a zero-copy view of the flattened operands.
    With ``costs`` (one nonnegative weight per batch index, e.g. per-slice
    nnz of a ragged CSR structure) the boundaries equalise cumulative cost
    instead of index count.  Degenerate inputs collapse to one full slice.
    """
    batch = int(batch)
    if batch <= 1 or workers <= 1:
        return [slice(0, batch)]
    n_tiles = min(batch, max(2, workers * oversubscription))
    if costs is None:
        bounds = np.linspace(0, batch, n_tiles + 1).round().astype(np.int64)
    else:
        costs = np.asarray(costs, dtype=np.float64).reshape(-1)
        if costs.shape[0] != batch:
            raise ValueError(f"{costs.shape[0]} costs for batch {batch}")
        total = float(costs.sum())
        if total <= 0.0:
            bounds = np.linspace(0, batch, n_tiles + 1).round().astype(np.int64)
        else:
            cum = np.cumsum(costs)
            targets = np.linspace(0.0, total, n_tiles + 1)[1:-1]
            inner = np.searchsorted(cum, targets, side="left") + 1
            bounds = np.concatenate(([0], inner, [batch]))
    bounds = np.unique(np.clip(bounds, 0, batch))
    return [slice(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]


def slice_costs(slices: Sequence[slice], costs: Optional[np.ndarray]) -> Optional[List[float]]:
    """Total cost per slice (``None`` passes through for uniform tiles)."""
    if costs is None:
        return None
    costs = np.asarray(costs, dtype=np.float64).reshape(-1)
    return [float(costs[s].sum()) for s in slices]


class WorkerPool:
    """Persistent lazily-started worker pool with fork-safe lifecycle.

    * **lazy start** — no thread exists until the first parallel ``run``;
    * **fork safety** — the executor records its pid; a forked child sees a
      stale pid and discards the inherited (threadless) executor instead of
      trying to join threads that do not exist on its side of the fork;
    * **reconfiguration** — the worker count is re-resolved per ``run``; a
      changed ``$REPRO_MULTICORE_WORKERS`` rebuilds the pool;
    * **atexit shutdown** — registered at first start, so interpreter exit
      joins the workers exactly once.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self._requested = workers
        self._executor: Optional[ThreadPoolExecutor] = None
        self._process_executor = None
        self._started_workers: Optional[int] = None
        self._pid: Optional[int] = None
        self._lock = threading.Lock()
        self._atexit_registered = False

    # ------------------------------------------------------------- properties
    @property
    def workers(self) -> int:
        return resolve_worker_count(self._requested)

    @property
    def mode(self) -> str:
        return resolve_mode()

    @property
    def started(self) -> bool:
        """Whether a live thread pool exists in *this* process."""
        return self._executor is not None and self._pid == os.getpid()

    # -------------------------------------------------------------- lifecycle
    def _register_atexit(self) -> None:
        if not self._atexit_registered:
            atexit.register(self.shutdown)
            self._atexit_registered = True

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            pid = os.getpid()
            workers = self.workers
            if self._executor is not None and self._pid != pid:
                # Forked child: the parent's worker threads do not exist on
                # this side of the fork — drop the stale handle, never join it.
                self._executor = None
                self._process_executor = None
            if self._executor is not None and self._started_workers != workers:
                self._executor.shutdown(wait=True)
                self._executor = None
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-mc"
                )
                self._started_workers = workers
                self._pid = pid
                self._register_atexit()
            return self._executor

    def _ensure_process(self):
        from concurrent.futures import ProcessPoolExecutor

        with self._lock:
            pid = os.getpid()
            if self._process_executor is not None and self._pid != pid:
                self._process_executor = None
            if self._process_executor is None:
                self._process_executor = ProcessPoolExecutor(
                    max_workers=self.workers
                )
                self._pid = pid
                self._register_atexit()
            return self._process_executor

    def shutdown(self) -> None:
        """Join and drop both executors (safe to call repeatedly)."""
        with self._lock:
            if self._executor is not None and self._pid == os.getpid():
                self._executor.shutdown(wait=True)
            self._executor = None
            if self._process_executor is not None and self._pid == os.getpid():
                self._process_executor.shutdown(wait=True)
            self._process_executor = None
            self._started_workers = None

    # -------------------------------------------------------------- execution
    def run(
        self,
        thunks: Sequence[Callable[[], Any]],
        costs: Optional[Sequence[float]] = None,
        spans: Optional[Sequence[Optional[Dict[str, Any]]]] = None,
    ) -> List[Any]:
        """Execute ``thunks`` on the pool, returning results in input order.

        With one thunk or one worker the call degenerates to inline
        execution — no pool is started, no thread is touched.  ``costs``
        orders submission heaviest-first (the executor's shared queue then
        steals work naturally); ``spans`` attaches per-tile ``mc_tile`` trace
        spans, and the submitting thread's tracer phase/labels are re-applied
        on the worker so its lane stays attributable.  Exceptions propagate
        to the caller.
        """
        thunks = list(thunks)
        if not thunks:
            return []
        if len(thunks) == 1 or self.workers <= 1:
            return [thunk() for thunk in thunks]
        tracer = current_tracer()
        if tracer is not None:
            context = tracer.capture_context()
            n_workers = self.workers
            metas = list(spans) if spans is not None else [None] * len(thunks)

            def _traced(thunk: Callable[[], Any], meta: Optional[Dict[str, Any]]):
                def call():
                    with tracer.apply_context(context):
                        args = dict(meta or {})
                        args["workers"] = n_workers
                        with tracer.span("mc_tile", "tile", **args):
                            return thunk()

                return call

            thunks = [_traced(t, m) for t, m in zip(thunks, metas)]
        order = list(range(len(thunks)))
        if costs is not None:
            order.sort(key=lambda i: -float(costs[i]))
        executor = self._ensure()
        futures = {i: executor.submit(thunks[i]) for i in order}
        return [futures[i].result() for i in range(len(thunks))]

    def run_process(self, fn: Callable, payloads: Sequence[Tuple]) -> List[Any]:
        """Execute ``fn(*payload)`` per payload on the process pool, in order."""
        if len(payloads) == 1 or self.workers <= 1:
            return [fn(*payload) for payload in payloads]
        executor = self._ensure_process()
        futures = [executor.submit(fn, *payload) for payload in payloads]
        return [future.result() for future in futures]


#: Process-wide pool shared by every multicore plan (and the serving path).
_POOL = WorkerPool()


def get_pool() -> WorkerPool:
    """The shared process-wide :class:`WorkerPool`."""
    return _POOL


# --------------------------------------------------------------- tile layouts
def _nm_tile(
    values3: np.ndarray,
    indices3: np.ndarray,
    sl: slice,
    parent: NMSparseMatrix,
    cols3: Optional[np.ndarray] = None,
    scatter3: Optional[np.ndarray] = None,
) -> NMSparseMatrix:
    """Zero-copy N:M tile over flattened-batch slice ``sl``.

    Bypasses ``__post_init__`` — the parent structure already validated these
    arrays — and pre-seeds the per-tile column/scatter caches from slices of
    the parent's, so no tile recomputes metadata the parent already walked.
    """
    tile = object.__new__(NMSparseMatrix)
    tile.values = values3[sl]
    tile.indices = indices3[sl]
    tile.pattern = parent.pattern
    tile.dense_cols = parent.dense_cols
    tile.dtype = parent.dtype
    if cols3 is not None:
        tile.__dict__["_column_cache"] = cols3[sl]
    if scatter3 is not None:
        tile.__dict__["_scatter_cache"] = (tile.values, scatter3[sl])
    return tile


def _csr_skeletons(
    structure: PaddedCSRMatrix, slices: Sequence[slice]
) -> List[PaddedCSRMatrix]:
    """Values-less CSR tiles over flattened-batch slices, memoised per structure.

    Each tile owns a *fresh* shared-cache dict pre-seeded with its slice of
    the globally-computed validity mask: tiles executing concurrently must
    never write lazily into one shared dict, and the tile-local flat
    gather/scatter tables they do build are cached here across training
    steps (``with_values`` siblings share the dict by reference, exactly as
    the full-size structure does).
    """
    key = tuple((s.start, s.stop) for s in slices)
    cached = structure._shared.get("mc_tiles")
    if cached is not None and cached[0] == key:
        return cached[1]
    rows, width = structure.rows, structure.width
    batch = int(np.prod(structure.batch_shape, dtype=np.int64))
    cols3 = structure.cols.reshape(batch, rows, width)
    lengths3 = structure.lengths.reshape(batch, rows)
    valid3 = structure.valid_lanes().reshape(batch, rows, width)
    tiles: List[PaddedCSRMatrix] = []
    for sl in slices:
        tile = object.__new__(PaddedCSRMatrix)
        extent = sl.stop - sl.start
        # Shape-correct zero-memory placeholder; every consumer goes through
        # ``with_values`` before touching values.
        tile.values = np.broadcast_to(np.float32(0.0), (extent, rows, width))
        tile.cols = cols3[sl]
        tile.lengths = lengths3[sl]
        tile.dense_cols = structure.dense_cols
        tile.dtype = structure.dtype
        tile.__dict__["_shared_caches"] = {"valid": valid3[sl]}
        tiles.append(tile)
    # repro: owns-buffer — memo write into the structure's shared cache dict, same protocol as valid_lanes()
    structure._shared["mc_tiles"] = (key, tiles)
    return tiles


def _flat_batch(structure) -> int:
    return int(np.prod(structure.batch_shape, dtype=np.int64))


def _csr_costs(structure: PaddedCSRMatrix) -> np.ndarray:
    """Per-flattened-batch-index nnz — the tile scheduler's cost weights."""
    batch = _flat_batch(structure)
    return structure.lengths.reshape(batch, -1).sum(axis=1, dtype=np.int64)


# ------------------------------------------------------------ process workers
def _process_tile_forward(
    key: PlanKey,
    q_t: np.ndarray,
    k_t: np.ndarray,
    v_t: np.ndarray,
    struct_fields: Optional[Tuple[np.ndarray, np.ndarray, int, str]],
    scale: Optional[float],
    criterion: str,
    segmented: Optional[bool],
) -> np.ndarray:
    """Whole-chain fused forward of one tile, run inside a pool child process.

    Rebuilds the single-core fast plan from the picklable plan key (the
    child's plan cache is cold and irrelevant — construction is cheap) and a
    padded-CSR structure from the shipped arrays, then runs the exact chain
    the thread path runs per tile.  ``segmented`` is the softmax branch the
    *parent* pinned on the global lengths — a child deciding from its local
    tile would reintroduce the summation-order divergence (see softmax.py).
    """
    fast_key = PlanKey(key.mechanism, key.layout, FAST, key.dtype, key.shape_class)
    plan = AttentionPlan(fast_key, fused=True)
    structure = None
    if struct_fields is not None:
        cols, lengths, dense_cols, dtype = struct_fields
        structure = PaddedCSRMatrix(
            values=np.zeros(cols.shape, dtype=np.float32),
            cols=cols,
            lengths=lengths,
            dense_cols=dense_cols,
            dtype=dtype,
        )
    scores = plan.compute_scores(
        q_t, k_t, structure=structure, scale=scale, criterion=criterion
    )
    buf = scores.values
    if not buf.flags.writeable or not buf.flags.c_contiguous:
        buf = np.array(buf, dtype=np.float32)
    valid = scores.valid_lanes()
    lengths = None if valid is None else scores.row_lengths()
    # repro: owns-buffer — fused plan reuses the score buffer it owns (or just copied)
    masked_softmax_values(buf, valid, lengths, out=buf, segmented=segmented)
    return plan.contract(scores.with_values(buf), v_t)


# ------------------------------------------------------------------- the plan
class MulticoreAttentionPlan(AttentionPlan):
    """A fast fused plan whose stages execute as batch×head tiles on a pool.

    Subclasses the fast :class:`~repro.core.plan.AttentionPlan` (the kernel
    registry falls ``multicore`` back to the ``fast`` implementations), so
    every degenerate case — one worker, flat batch of one, a ``block_mask``
    — simply *is* the fast plan via ``super()``.  The overridden stages tile
    the flattened batch dimension; each tile calls the same resolved kernels
    on zero-copy views and writes a disjoint slice of a preallocated output.
    """

    def __init__(self, key: PlanKey) -> None:
        super().__init__(key, fused=True)

    # ----------------------------------------------------------------- tiling
    def _tiles(self, batch: int, costs: Optional[np.ndarray] = None):
        """``(pool, slices, per_slice_costs)``; ``slices`` is ``None`` when
        tiling is degenerate and the caller should use the ``super()`` path."""
        pool = get_pool()
        if batch <= 1 or pool.workers <= 1:
            return pool, None, None
        slices = tile_slices(batch, pool.workers, costs)
        if len(slices) <= 1:
            return pool, None, None
        return pool, slices, slice_costs(slices, costs)

    @staticmethod
    def _span_meta(stage: str, sl: slice, index: int, shape: Tuple[int, ...]):
        return {
            "stage": stage,
            "tile": index,
            "rows": f"{sl.start}:{sl.stop}",
            "shape": "x".join(str(d) for d in shape),
        }

    # ------------------------------------------------------------------ stages
    def compute_scores(
        self,
        q: np.ndarray,
        k: np.ndarray,
        structure=None,
        scale: Optional[float] = None,
        criterion: str = "value",
        block_mask=None,
    ):
        if block_mask is not None:
            # blocked-ELL interacts with the epilogue's block masking; keep
            # the whole-batch fast path for it.
            return super().compute_scores(
                q, k, structure=structure, scale=scale,
                criterion=criterion, block_mask=block_mask,
            )
        if self.key.layout == "csr":
            if (
                structure is None
                or structure.batch_shape != np.asarray(q).shape[:-2]
            ):
                # missing or batch-mismatched structure: let the fast path
                # raise its usual error (callers broadcast before planning)
                return super().compute_scores(
                    q, k, structure=structure, scale=scale, criterion=criterion
                )
            costs = _csr_costs(structure)
        else:
            costs = None
        q = guard_input(np.asarray(q, dtype=np.float32))
        k = guard_input(np.asarray(k, dtype=np.float32))
        from repro.utils.shapes import as_batched_3d

        q3, batch_shape = as_batched_3d(q)
        k3, _ = as_batched_3d(k)
        pool, slices, costs_per_tile = self._tiles(q3.shape[0], costs)
        if slices is None:
            return super().compute_scores(
                q, k, structure=structure, scale=scale, criterion=criterion
            )
        with self._trace_labels():
            if self.key.layout == "nm":
                return self._scores_nm_tiled(
                    pool, slices, costs_per_tile, q3, k3, batch_shape,
                    scale, criterion,
                )
            return self._scores_csr_tiled(
                pool, slices, costs_per_tile, q3, k3, structure, scale
            )

    def _scores_nm_tiled(
        self, pool, slices, costs, q3, k3, batch_shape, scale, criterion
    ) -> NMSparseMatrix:
        rows = q3.shape[1]
        dense_cols = k3.shape[1]
        kept = self._pattern.kept(dense_cols)
        batch = q3.shape[0]
        values_full = np.empty((batch, rows, kept), dtype=np.float32)
        indices_full = np.empty((batch, rows, kept), dtype=np.int8)

        def tile_thunk(sl: slice):
            def thunk():
                tile = self._sddmm(
                    q3[sl], k3[sl], pattern=self._pattern, scale=scale,
                    dtype=self.key.dtype, criterion=criterion, block_mask=None,
                )
                values_full[sl] = tile.values  # repro: owns-buffer — disjoint slice of a preallocated tile output
                indices_full[sl] = tile.indices  # repro: owns-buffer — disjoint slice of a preallocated tile output
            return thunk

        metas = [
            self._span_meta("sddmm_nm", sl, i, (sl.stop - sl.start, rows, kept))
            for i, sl in enumerate(slices)
        ]
        pool.run([tile_thunk(sl) for sl in slices], costs, metas)
        return NMSparseMatrix(
            values=values_full.reshape(batch_shape + (rows, kept)),
            indices=indices_full.reshape(batch_shape + (rows, kept)),
            pattern=self._pattern,
            dense_cols=dense_cols,
            dtype=self.key.dtype,
        )

    def _scores_csr_tiled(
        self, pool, slices, costs, q3, k3, structure, scale
    ) -> PaddedCSRMatrix:
        rows, width = structure.rows, structure.width
        batch = q3.shape[0]
        tiles = _csr_skeletons(structure, slices)
        values_full = np.empty((batch, rows, width), dtype=np.float32)

        def tile_thunk(sl: slice, tile: PaddedCSRMatrix):
            def thunk():
                scored = self._sddmm(q3[sl], k3[sl], tile, scale=scale)
                values_full[sl] = scored.values  # repro: owns-buffer — disjoint slice of a preallocated tile output
            return thunk

        metas = [
            self._span_meta("sddmm_csr", sl, i, (sl.stop - sl.start, rows, width))
            for i, sl in enumerate(slices)
        ]
        pool.run(
            [tile_thunk(sl, tile) for sl, tile in zip(slices, tiles)],
            costs, metas,
        )
        return structure.with_values(values_full.reshape(structure.values.shape))

    def compute_probs(self, scores, owned: bool = True):
        batch = _flat_batch(scores)
        valid = scores.valid_lanes()
        costs = _csr_costs(scores) if valid is not None else None
        pool, slices, costs_per_tile = self._tiles(batch, costs)
        if slices is None:
            return super().compute_probs(scores, owned=owned)
        buf = scores.values
        if not owned or not buf.flags.writeable or not buf.flags.c_contiguous:
            buf = np.array(buf, dtype=np.float32)
        rows, width = buf.shape[-2], buf.shape[-1]
        lengths = None if valid is None else scores.row_lengths()
        # One global branch decision for every tile: the chunked and
        # segmented passes differ in summation order, and a tile's local
        # lengths.min() could otherwise flip the dispatch (see softmax.py).
        segmented = None if valid is None else bool(int(lengths.min()) < width)
        buf3 = buf.reshape(batch, rows, width)
        valid3 = None if valid is None else valid.reshape(batch, rows, width)
        lengths3 = None if lengths is None else lengths.reshape(batch, rows)
        tracer = current_tracer()

        def tile_thunk(sl: slice):
            def thunk():
                span = (
                    nullcontext()
                    if tracer is None
                    else tracer.span(
                        "masked_softmax",
                        backend=self.key.backend,
                        shape="x".join(str(d) for d in buf3[sl].shape),
                    )
                )
                with span:
                    # repro: owns-buffer — fused plan reuses the score buffer it owns (or just copied)
                    masked_softmax_values(
                        buf3[sl],
                        None if valid3 is None else valid3[sl],
                        None if lengths3 is None else lengths3[sl],
                        out=buf3[sl],
                        segmented=segmented,
                    )
            return thunk

        metas = [
            self._span_meta("masked_softmax", sl, i, (sl.stop - sl.start, rows, width))
            for i, sl in enumerate(slices)
        ]
        with self._trace_labels():
            pool.run([tile_thunk(sl) for sl in slices], costs_per_tile, metas)
        return scores.with_values(buf)

    def contract(
        self,
        probs,
        v: np.ndarray,
        drop_keep: Optional[np.ndarray] = None,
        save_scatter: bool = False,
    ) -> np.ndarray:
        batch = _flat_batch(probs)
        costs = _csr_costs(probs) if probs.valid_lanes() is not None else None
        pool, slices, costs_per_tile = self._tiles(batch, costs)
        if slices is None:
            return super().contract(
                probs, v, drop_keep=drop_keep, save_scatter=save_scatter
            )
        v = guard_input(np.asarray(v, dtype=np.float32))
        from repro.utils.shapes import as_batched_3d, restore_batch_shape

        v3, batch_shape = as_batched_3d(v)
        rows, width = probs.values.shape[-2], probs.values.shape[-1]
        values3 = probs.values.reshape(batch, rows, width)
        with self._trace_labels():
            if save_scatter:
                self._save_scatter_tiled(pool, slices, costs_per_tile, probs, values3)
            scatter3 = self._flat_scatter_view(probs)
            applied_values = (
                probs.values if drop_keep is None else probs.values * drop_keep
            )
            applied3 = applied_values.reshape(batch, rows, width)
            seed_scatter = drop_keep is None and scatter3 is not None
            tile_layouts = self._tile_layouts(
                probs, slices, applied3,
                scatter3=scatter3 if seed_scatter else None,
            )
            out_full = np.empty((batch, rows, v3.shape[-1]), dtype=np.float32)

            def tile_thunk(sl: slice, tile):
                def thunk():
                    out_full[sl] = self._spmm(tile, v3[sl])  # repro: owns-buffer — disjoint slice of a preallocated tile output
                return thunk

            metas = [
                self._span_meta("spmm", sl, i, (sl.stop - sl.start, rows, width))
                for i, sl in enumerate(slices)
            ]
            pool.run(
                [tile_thunk(sl, tile) for sl, tile in zip(slices, tile_layouts)],
                costs_per_tile, metas,
            )
        out = restore_batch_shape(out_full, batch_shape)
        return check_output(out, "attention output")

    def _save_scatter_tiled(self, pool, slices, costs, probs, values3) -> None:
        """Tiled equivalent of ``probs.to_scattered(cache=True)``."""
        cached = probs.__dict__.get("_scatter_cache")
        if cached is not None and cached[0] is probs.values:
            return
        batch, rows = values3.shape[0], values3.shape[1]
        dense_cols = probs.dense_cols
        dense_full = np.empty((batch, rows, dense_cols), dtype=np.float32)
        tile_layouts = self._tile_layouts(probs, slices, values3)

        def tile_thunk(sl: slice, tile):
            def thunk():
                dense_full[sl] = tile.scatter_compressed(tile.values)  # repro: owns-buffer — disjoint slice of a preallocated tile output
            return thunk

        metas = [
            self._span_meta("scatter", sl, i, (sl.stop - sl.start, rows, dense_cols))
            for i, sl in enumerate(slices)
        ]
        pool.run(
            [tile_thunk(sl, tile) for sl, tile in zip(slices, tile_layouts)],
            costs, metas,
        )
        dense = dense_full.reshape(probs.values.shape[:-1] + (dense_cols,))
        # repro: owns-buffer — installs the frozen scatter memo exactly as to_scattered(cache=True) does
        probs.__dict__["_scatter_cache"] = (probs.values, freeze_structure(dense))

    def _flat_scatter_view(self, probs) -> Optional[np.ndarray]:
        """Flattened view of a live cached scatter tile, else ``None``."""
        cached = probs.__dict__.get("_scatter_cache")
        if cached is None or cached[0] is not probs.values:
            return None
        batch = _flat_batch(probs)
        dense = cached[1]
        return dense.reshape(batch, dense.shape[-2], dense.shape[-1])

    def _tile_layouts(
        self,
        parent,
        slices: Sequence[slice],
        values3: np.ndarray,
        scatter3: Optional[np.ndarray] = None,
    ):
        """Per-slice compressed layouts sharing ``parent``'s structure.

        N:M tiles are built directly from sliced views (structures are fresh
        per step — the scores are dynamic); CSR tiles reuse the memoised
        skeletons so their flat gather/scatter tables persist across steps,
        exactly as the full-size fast path's structure caches do.
        """
        if isinstance(parent, NMSparseMatrix):
            batch = values3.shape[0]
            rows, kept = values3.shape[1], values3.shape[2]
            indices3 = parent.indices.reshape(batch, rows, kept)
            cols3 = parent.column_indices().reshape(batch, rows, kept)
            return [
                _nm_tile(values3, indices3, sl, parent, cols3, scatter3)
                for sl in slices
            ]
        skeletons = _csr_skeletons(parent, slices)
        tiles = []
        for sl, skeleton in zip(slices, skeletons):
            tile = skeleton.with_values(values3[sl])
            if scatter3 is not None:
                tile.__dict__["_scatter_cache"] = (tile.values, scatter3[sl])
            tiles.append(tile)
        return tiles

    # -------------------------------------------------------------------- bwd
    def backward(
        self,
        probs,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        d_out: np.ndarray,
        scale: float,
        drop_keep: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        batch = _flat_batch(probs)
        costs = _csr_costs(probs) if probs.valid_lanes() is not None else None
        pool, slices, costs_per_tile = self._tiles(batch, costs)
        if slices is None:
            # repro: owns-buffer — forwards the caller's out unchanged; the parent guards it
            return super().backward(
                probs, q, k, v, d_out, scale, drop_keep=drop_keep, out=out
            )
        from repro.utils.shapes import as_batched_3d, restore_batch_shape

        q = guard_input(np.asarray(q, dtype=np.float32))
        k = guard_input(np.asarray(k, dtype=np.float32))
        v = guard_input(np.asarray(v, dtype=np.float32))
        d_out = guard_input(np.asarray(d_out, dtype=np.float32))
        q3, batch_shape = as_batched_3d(q)
        k3, _ = as_batched_3d(k)
        v3, _ = as_batched_3d(v)
        g3, _ = as_batched_3d(d_out)
        out3 = None
        if out is not None:
            out3, _ = as_batched_3d(guard_input(np.asarray(out, dtype=np.float32)))
        rows, width = probs.values.shape[-2], probs.values.shape[-1]
        values3 = probs.values.reshape(batch, rows, width)
        keep3 = (
            None if drop_keep is None
            else np.asarray(drop_keep, dtype=np.float32).reshape(batch, rows, width)
        )
        scatter3 = self._flat_scatter_view(probs)
        tile_layouts = self._tile_layouts(probs, slices, values3, scatter3=scatter3)
        d = q3.shape[-1]
        dq_full = np.empty((batch, q3.shape[1], d), dtype=np.float32)
        dk_full = np.empty((batch, k3.shape[1], d), dtype=np.float32)
        dv_full = np.empty((batch, v3.shape[1], v3.shape[2]), dtype=np.float32)

        def tile_thunk(sl: slice, tile):
            def thunk():
                d_q, d_k, d_v = self._bwd(
                    tile,
                    q3[sl],
                    k3[sl],
                    v3[sl],
                    g3[sl],
                    scale,
                    None if keep3 is None else keep3[sl],
                    None if out3 is None else out3[sl],
                )
                dq_full[sl] = d_q  # repro: owns-buffer — disjoint slice of a preallocated tile output
                dk_full[sl] = d_k  # repro: owns-buffer — disjoint slice of a preallocated tile output
                dv_full[sl] = d_v  # repro: owns-buffer — disjoint slice of a preallocated tile output
            return thunk

        metas = [
            self._span_meta("attention_bwd", sl, i, (sl.stop - sl.start, rows, width))
            for i, sl in enumerate(slices)
        ]
        with self._trace_labels():
            pool.run(
                [tile_thunk(sl, tile) for sl, tile in zip(slices, tile_layouts)],
                costs_per_tile, metas,
            )
        grads = (
            restore_batch_shape(dq_full, batch_shape),
            restore_batch_shape(dk_full, batch_shape),
            restore_batch_shape(dv_full, batch_shape),
        )
        return check_grads(grads, "attention gradient")

    # ------------------------------------------------------------- end-to-end
    def forward(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        structure=None,
        scale: Optional[float] = None,
        criterion: str = "value",
        block_mask=None,
        return_probs: bool = False,
    ):
        pool = get_pool()
        if (
            pool.mode == PROCESS_MODE
            and not return_probs
            and block_mask is None
            and pool.workers > 1
        ):
            result = self._forward_process(
                pool, q, k, v, structure=structure, scale=scale,
                criterion=criterion,
            )
            if result is not None:
                return result
        return super().forward(
            q, k, v, structure=structure, scale=scale, criterion=criterion,
            block_mask=block_mask, return_probs=return_probs,
        )

    def _forward_process(
        self, pool, q, k, v, structure=None, scale=None, criterion="value"
    ):
        """Whole-chain tiles on the process pool; ``None`` when degenerate."""
        from repro.utils.shapes import as_batched_3d, restore_batch_shape

        q = np.asarray(q, dtype=np.float32)
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        if self.key.layout == "csr":
            if structure is None or structure.batch_shape != q.shape[:-2]:
                return None  # thread path reproduces the fast-path error
            costs = _csr_costs(structure)
        else:
            costs = None
        q3, batch_shape = as_batched_3d(guard_input(q))
        k3, _ = as_batched_3d(guard_input(k))
        v3, _ = as_batched_3d(guard_input(v))
        batch = q3.shape[0]
        _, slices, _ = self._tiles(batch, costs)
        if slices is None:
            return None
        struct3: Optional[Tuple[np.ndarray, np.ndarray]] = None
        segmented: Optional[bool] = None
        if structure is not None:
            rows, width = structure.rows, structure.width
            struct3 = (
                np.ascontiguousarray(structure.cols.reshape(batch, rows, width)),
                np.ascontiguousarray(structure.lengths.reshape(batch, rows)),
            )
            segmented = bool(int(structure.lengths.min()) < width)
        payloads = []
        for sl in slices:
            fields = None
            if struct3 is not None:
                fields = (
                    struct3[0][sl], struct3[1][sl],
                    structure.dense_cols, structure.dtype,
                )
            payloads.append(
                (self.key, q3[sl], k3[sl], v3[sl], fields, scale, criterion, segmented)
            )
        results = pool.run_process(_process_tile_forward, payloads)
        out_full = np.concatenate(results, axis=0)
        out = restore_batch_shape(out_full, batch_shape)
        return check_output(out, "attention output")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MulticoreAttentionPlan({self.key!r}, workers={get_pool().workers})"


@register_plan_builder(MULTICORE)
def _build_multicore_plan(key: PlanKey) -> MulticoreAttentionPlan:
    """Multicore backend: the fast fused plan, tiled over a worker pool."""
    return MulticoreAttentionPlan(key)
