"""Shape helpers for batched attention tensors.

Attention code in :mod:`repro.core` operates on matrices with an arbitrary
number of leading batch dimensions, e.g. ``(batch, heads, seq, dim)``.  These
helpers flatten the leading dimensions into one so kernels only deal with 3-D
``(B, rows, cols)`` arrays, and restore the original shape afterwards.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def as_batched_3d(x: np.ndarray) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Reshape ``x`` to ``(B, rows, cols)`` and return the original batch shape.

    A 2-D input becomes ``(1, rows, cols)`` with batch shape ``()``.
    """
    x = np.asarray(x)
    if x.ndim < 2:
        raise ValueError(f"expected at least a 2-D array, got shape {x.shape}")
    batch_shape = x.shape[:-2]
    rows, cols = x.shape[-2], x.shape[-1]
    batch = int(np.prod(batch_shape)) if batch_shape else 1
    return x.reshape(batch, rows, cols), batch_shape


def restore_batch_shape(x: np.ndarray, batch_shape: Tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`as_batched_3d` for an array shaped ``(B, rows, cols)``."""
    if x.ndim != 3:
        raise ValueError(f"expected a 3-D array, got shape {x.shape}")
    return x.reshape(*batch_shape, x.shape[-2], x.shape[-1])


def check_matmul_shapes(a: np.ndarray, b: np.ndarray) -> None:
    """Raise ``ValueError`` if ``a @ b`` is not a valid (batched) matmul."""
    if a.ndim < 2 or b.ndim < 2:
        raise ValueError("matmul operands must be at least 2-D")
    if a.shape[-1] != b.shape[-2]:
        raise ValueError(
            f"inner dimensions do not match: {a.shape} @ {b.shape}"
        )
    if a.shape[:-2] != b.shape[:-2]:
        raise ValueError(
            f"batch dimensions do not match: {a.shape[:-2]} vs {b.shape[:-2]}"
        )
