"""Deterministic random-number handling.

All stochastic code in the library accepts either an integer seed or an
``numpy.random.Generator``.  This module centralises the conversion so that
experiments are reproducible run-to-run and the global NumPy legacy state is
never touched implicitly.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]

#: Default seed used by experiments when the caller does not provide one.
DEFAULT_SEED = 20230227  # submission date of the DFSS preprint


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed-like value.

    Parameters
    ----------
    seed:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(int(seed))


def set_global_seed(seed: int) -> np.random.Generator:
    """Seed the legacy global NumPy state *and* return a fresh generator.

    Only used by example scripts; library code never relies on global state.
    """
    np.random.seed(int(seed))
    return np.random.default_rng(int(seed))


# ------------------------------------------------- layout-independent dropout
# splitmix64 finalizer constants (Steele et al., "Fast Splittable PRNGs").
_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_MIX2 = np.uint64(0x94D049BB133111EB)


def draw_dropout_seed(rng: np.random.Generator) -> int:
    """Draw one per-call dropout seed from ``rng``.

    Both the compressed and the dense DFSS attention paths consume exactly one
    integer from the module generator per forward call, so seeded runs stay
    aligned step-for-step regardless of which path executes.
    """
    return int(rng.integers(0, np.iinfo(np.int64).max))


def hashed_uniform(seed: int, positions: np.ndarray) -> np.ndarray:
    """Counter-based uniform(0, 1) values keyed by ``(seed, position)``.

    Unlike a sequential generator stream, the value at a position depends only
    on the seed and the position itself (splitmix64 of ``seed + (pos+1)·γ``),
    so any layout — dense, compressed, tiled — evaluating any subset of
    positions in any order reproduces identical values.
    """
    z = (np.asarray(positions, dtype=np.uint64) + np.uint64(1)) * _SM64_GAMMA
    z = z + np.uint64(seed)
    z = (z ^ (z >> np.uint64(30))) * _SM64_MIX1
    z = (z ^ (z >> np.uint64(27))) * _SM64_MIX2
    z = z ^ (z >> np.uint64(31))
    return (z >> np.uint64(11)).astype(np.float64) * (1.0 / (1 << 53))


def attention_dropout_keep(seed: int, p: float, positions: np.ndarray) -> np.ndarray:
    """Inverted-dropout keep mask (float32, scaled by ``1/(1-p)``) per position.

    ``positions`` are linear indices into the *dense* attention-weight tensor;
    the sparse path passes the dense positions of its stored nonzeros and the
    dense path passes ``arange(size)``, which makes the two masks agree at
    every shared coordinate.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must lie in [0, 1)")
    keep = hashed_uniform(seed, positions) >= p
    return keep.astype(np.float32) / np.float32(1.0 - p)


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Create ``count`` independent generators derived from ``seed``.

    Useful when an experiment runs several trials (the paper averages over
    8 random seeds for the QA / MLM tables).
    """
    root = new_rng(seed)
    seeds = root.integers(0, 2**31 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
