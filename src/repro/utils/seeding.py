"""Deterministic random-number handling.

All stochastic code in the library accepts either an integer seed or an
``numpy.random.Generator``.  This module centralises the conversion so that
experiments are reproducible run-to-run and the global NumPy legacy state is
never touched implicitly.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]

#: Default seed used by experiments when the caller does not provide one.
DEFAULT_SEED = 20230227  # submission date of the DFSS preprint


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed-like value.

    Parameters
    ----------
    seed:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(int(seed))


def set_global_seed(seed: int) -> np.random.Generator:
    """Seed the legacy global NumPy state *and* return a fresh generator.

    Only used by example scripts; library code never relies on global state.
    """
    np.random.seed(int(seed))
    return np.random.default_rng(int(seed))


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Create ``count`` independent generators derived from ``seed``.

    Useful when an experiment runs several trials (the paper averages over
    8 random seeds for the QA / MLM tables).
    """
    root = new_rng(seed)
    seeds = root.integers(0, 2**31 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
