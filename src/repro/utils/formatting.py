"""Plain-text table formatting for experiment and benchmark output.

The experiment harness prints the same rows/series the paper reports; these
helpers keep that output aligned and dependency-free (no tabulate/pandas).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_float(value, digits: int = 3) -> str:
    """Format a float with ``digits`` decimals; pass strings through unchanged."""
    if isinstance(value, str):
        return value
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    digits: int = 3,
    title: str = "",
) -> str:
    """Render ``rows`` as an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; floats are rounded to ``digits`` decimals.
    title:
        Optional title printed above the table.
    """
    str_rows: List[List[str]] = [[format_float(v, digits) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
