"""Shared utilities: deterministic seeding, shape handling, table formatting."""

from repro.utils.seeding import new_rng, set_global_seed
from repro.utils.shapes import as_batched_3d, restore_batch_shape, check_matmul_shapes
from repro.utils.formatting import format_table, format_float

__all__ = [
    "new_rng",
    "set_global_seed",
    "as_batched_3d",
    "restore_batch_shape",
    "check_matmul_shapes",
    "format_table",
    "format_float",
]
