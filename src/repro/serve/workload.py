"""Synthetic heavy-traffic workload generator for the serving engine.

Produces a reproducible stream of :class:`~repro.serve.engine.ServeRequest`
objects mixing mechanisms and sequence lengths, with exponential inter-arrival
gaps (a Poisson arrival process at ``rate_rps`` requests/second) recorded in
``arrival_offset_s``.  The ``serving_throughput`` benchmark and the serving
tests both draw from here so "the workload" means one thing everywhere.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

import numpy as np

from repro.serve.engine import ServeRequest

__all__ = ["DEFAULT_MIX", "synthetic_workload"]

#: Default traffic mix: static-mask mechanisms with distinct sparsity
#: patterns, all coalescible into one ragged batch.
DEFAULT_MIX: Tuple[Tuple[str, Mapping[str, object]], ...] = (
    ("local", {"window": 16}),
    ("sparse_transformer", {"window": 8, "stride": 64}),
    ("longformer", {"window": 8, "num_global": 2}),
    ("bigbird", {"block_size": 32}),
)


def synthetic_workload(
    n_requests: int,
    seq_lens: Sequence[int] = (64, 128, 256),
    heads: int = 2,
    head_dim: int = 64,
    mix: Sequence[Tuple[str, Mapping[str, object]]] = DEFAULT_MIX,
    rate_rps: float = 2000.0,
    seed: int = 0,
) -> List[ServeRequest]:
    """Generate ``n_requests`` self-attention requests with Poisson arrivals.

    Each request draws a (mechanism, options) pair from ``mix`` and a
    sequence length from ``seq_lens`` uniformly at random, with
    ``(heads, seq_len, head_dim)`` float32 tensors.  Deterministic in
    ``seed``.
    """
    if n_requests < 0:
        raise ValueError(f"n_requests must be >= 0, got {n_requests!r}")
    rng = np.random.default_rng(seed)
    requests: List[ServeRequest] = []
    arrival = 0.0
    for i in range(n_requests):
        mechanism, options = mix[int(rng.integers(len(mix)))]
        seq_len = int(seq_lens[int(rng.integers(len(seq_lens)))])
        shape = (heads, seq_len, head_dim)
        arrival += float(rng.exponential(1.0 / rate_rps)) if rate_rps > 0 else 0.0
        requests.append(
            ServeRequest(
                q=rng.standard_normal(shape).astype(np.float32),
                k=rng.standard_normal(shape).astype(np.float32),
                v=rng.standard_normal(shape).astype(np.float32),
                mechanism=mechanism,
                options=dict(options),
                request_id=f"r{i}",
                arrival_offset_s=arrival,
            )
        )
    return requests
