"""`repro.serve` — the request-level serving engine over the mechanism registry.

The first API in this repo designed around *requests* rather than tensors: a
:class:`ServeRequest` names its mechanism and carries its own Q/K/V (any
leading dimensions, any sequence length), and the :class:`AttentionServer`
decides how to execute it.

* Requests of ``batchable`` mechanisms are coalesced — across *different*
  mechanisms and *different* sequence lengths — into one ragged padded-CSR
  batch (:mod:`repro.serve.batcher`) executed by width-invariant kernels
  (:mod:`repro.serve.executor`), so a request's output is bitwise-identical
  whether it was served alone or inside any batch.
* Static-mask structures are cached across requests
  (:class:`~repro.serve.cache.StructureCache`).
* Queues drain under a deadline-aware scheduler: a compatibility queue is
  flushed when it reaches ``max_batch_size`` or when its oldest request has
  waited ``max_wait_s`` (per-request override via ``ServeRequest.max_wait_s``).
* Non-batchable mechanisms fall back to per-request execution through their
  :class:`~repro.engine.AttentionEngine` — every registered mechanism is
  servable, batched or not.

Three entry points::

    results = repro.serve(requests)                  # offline: enqueue + drain

    server = AttentionServer(max_batch_size=16, max_wait_s=2e-3)
    server.enqueue(req); server.step()               # sync, clock-injectable

    async with AttentionServer() as server:          # async, deadline-driven
        result = await server.submit(req)
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Hashable, List, Mapping, Optional, Sequence

import numpy as np

from repro.engine import AttentionEngine
from repro.profile.tracer import current_tracer
from repro.serve.batcher import PreparedRequest, prepare_request, run_ragged_batch
from repro.serve.cache import StructureCache

__all__ = ["ServeRequest", "ServeResult", "AttentionServer", "serve"]


@dataclass
class ServeRequest:
    """One attention request: tensors plus the mechanism to run them through.

    ``k`` and ``v`` default to ``q`` (self-attention on a shared projection);
    ``mask`` bypasses the mechanism registry and serves an explicit boolean
    attention mask through the ragged pipeline.  ``max_wait_s`` overrides the
    server's batching deadline for this request; ``arrival_offset_s`` is the
    synthetic-workload arrival time used when replaying a trace.
    """

    q: np.ndarray
    k: Optional[np.ndarray] = None
    v: Optional[np.ndarray] = None
    mechanism: str = "dfss_2:4"
    options: Mapping[str, object] = field(default_factory=dict)
    mask: Optional[np.ndarray] = None
    request_id: Optional[str] = None
    max_wait_s: Optional[float] = None
    arrival_offset_s: float = 0.0

    def __post_init__(self) -> None:
        self.q = np.asarray(self.q, dtype=np.float32)
        self.k = self.q if self.k is None else np.asarray(self.k, dtype=np.float32)
        self.v = self.k if self.v is None else np.asarray(self.v, dtype=np.float32)
        if self.q.ndim < 2:
            raise ValueError(f"q must be at least 2-D (seq, d); got shape {self.q.shape}")
        if self.q.shape[:-2] != self.k.shape[:-2] or self.q.shape[:-2] != self.v.shape[:-2]:
            raise ValueError("q, k, v must share their leading dimensions")
        if self.q.shape[-1] != self.k.shape[-1]:
            raise ValueError("q and k must share the head dimension")
        if self.k.shape[-2] != self.v.shape[-2]:
            raise ValueError("k and v must share the sequence length")

    @property
    def seq_len(self) -> int:
        return self.q.shape[-2]

    @property
    def head_dim(self) -> int:
        return self.q.shape[-1]


@dataclass
class ServeResult:
    """Execution record of one request."""

    request_id: Optional[str]
    output: np.ndarray
    mechanism: str
    seq_len: int
    #: whether the request ran through the ragged coalesced pipeline
    #: (True even for a batch of one) or the per-request engine fallback.
    batched: bool
    #: number of requests that shared this request's batch (>= 1).
    batch_requests: int
    #: structure-cache outcome: True/False for static-mask mechanisms,
    #: None when no cache lookup applied.
    cache_hit: Optional[bool]
    latency_s: Optional[float] = None


@dataclass
class _Pending:
    prepared: PreparedRequest
    arrival: float
    deadline: float
    seq: int
    future: Optional["asyncio.Future"] = None
    result: Optional[ServeResult] = None


class AttentionServer:
    """Deadline-aware batching server over the mechanism registry.

    The scheduler core is synchronous and clock-injectable (``clock`` swaps
    ``time.monotonic`` for a fake in tests); the asyncio surface
    (:meth:`submit`, ``async with``) wraps it with a wake-on-enqueue drain
    loop.  ``max_batch_size`` bounds how many requests one ragged batch may
    coalesce; ``max_wait_s`` bounds how long a request may sit in its queue
    waiting for batchmates.
    """

    def __init__(
        self,
        max_batch_size: int = 8,
        max_wait_s: float = 2e-3,
        backend: Optional[str] = None,
        structure_cache: Optional[StructureCache] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size!r}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s!r}")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.backend = backend
        self.cache = structure_cache if structure_cache is not None else StructureCache()
        self._clock = clock
        self._queues: Dict[Hashable, Deque[_Pending]] = {}
        self._engines: Dict[Hashable, AttentionEngine] = {}
        self._counter = itertools.count()
        self._wake: Optional[asyncio.Event] = None
        self._run_task: Optional["asyncio.Task"] = None
        self.served_requests = 0
        self.served_batches = 0
        self.coalesced_requests = 0

    # ------------------------------------------------------------- sync core
    def _engine(self, mechanism: str, options: Mapping[str, object]) -> AttentionEngine:
        key = (mechanism, tuple(sorted((k, repr(v)) for k, v in dict(options).items())))
        engine = self._engines.get(key)
        if engine is None:
            engine = AttentionEngine(
                mechanism, backend=self.backend, _options=dict(options)
            )
            self._engines[key] = engine
        return engine

    @staticmethod
    def _compat_key(prepared: PreparedRequest, seq: int) -> Hashable:
        if not prepared.batchable:
            return ("solo", seq)
        request = prepared.request
        return ("ragged", request.head_dim, request.v.shape[-1])

    def enqueue(self, request: ServeRequest) -> _Pending:
        """Prepare a request and queue it; returns its pending handle."""
        engine = (
            None
            if request.mask is not None
            else self._engine(request.mechanism, request.options)
        )
        prepared = prepare_request(request, engine, self.cache)
        now = self._clock()
        wait = self.max_wait_s if request.max_wait_s is None else float(request.max_wait_s)
        seq = next(self._counter)
        pending = _Pending(prepared, arrival=now, deadline=now + wait, seq=seq)
        self._queues.setdefault(self._compat_key(prepared, seq), deque()).append(pending)
        if self._wake is not None:
            self._wake.set()
        return pending

    def step(self, now: Optional[float] = None, flush: bool = False) -> List[ServeResult]:
        """Execute every queue that is due at ``now``; returns fresh results.

        A queue is due when it holds ``max_batch_size`` requests, when its
        earliest deadline has expired, when it cannot coalesce at all
        (non-batchable requests never wait), or when ``flush`` forces it.
        """
        if now is None:
            now = self._clock()
        results: List[ServeResult] = []
        for key, queue in list(self._queues.items()):
            solo = key[0] == "solo"
            while queue:
                due = (
                    flush
                    or solo
                    or len(queue) >= self.max_batch_size
                    or min(p.deadline for p in queue) <= now
                )
                if not due:
                    break
                batch = [
                    queue.popleft()
                    for _ in range(min(self.max_batch_size, len(queue)))
                ]
                results.extend(self._execute(batch))
            if not queue:
                self._queues.pop(key, None)
        return results

    def drain(self) -> List[ServeResult]:
        """Flush every queue regardless of deadlines (offline execution)."""
        results: List[ServeResult] = []
        while self._queues:
            results.extend(self.step(flush=True))
        return results

    def next_deadline(self) -> Optional[float]:
        deadlines = [p.deadline for q in self._queues.values() for p in q]
        return min(deadlines) if deadlines else None

    @property
    def pending_count(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def _execute(self, batch: Sequence[_Pending]) -> List[ServeResult]:
        tracer = current_tracer()
        if tracer is not None:
            mechanisms = sorted({p.prepared.mechanism for p in batch})
            with tracer.span(
                "serve_batch",
                "serve",
                requests=len(batch),
                batchable=bool(batch and batch[0].prepared.batchable),
                mechanisms=",".join(mechanisms),
            ):
                return self._execute_inner(batch)
        return self._execute_inner(batch)

    def _execute_inner(self, batch: Sequence[_Pending]) -> List[ServeResult]:
        if batch and batch[0].prepared.batchable:
            outputs = run_ragged_batch([p.prepared for p in batch])
            batched = True
        else:
            outputs = [
                p.prepared.engine(
                    p.prepared.request.q, p.prepared.request.k, p.prepared.request.v
                )
                for p in batch
            ]
            batched = False
        done = self._clock()
        results = []
        for pending, output in zip(batch, outputs):
            prepared = pending.prepared
            result = ServeResult(
                request_id=prepared.request.request_id,
                output=output,
                mechanism=prepared.mechanism,
                seq_len=prepared.request.seq_len,
                batched=batched,
                batch_requests=len(batch),
                cache_hit=prepared.cache_hit,
                latency_s=max(done - pending.arrival, 0.0),
            )
            pending.result = result
            if pending.future is not None and not pending.future.done():
                pending.future.set_result(result)
            results.append(result)
        self.served_requests += len(batch)
        self.served_batches += 1
        if len(batch) > 1:
            self.coalesced_requests += len(batch)
        return results

    def stats(self) -> Dict[str, object]:
        return {
            "served_requests": self.served_requests,
            "served_batches": self.served_batches,
            "coalesced_requests": self.coalesced_requests,
            "pending": self.pending_count,
            "structure_cache": self.cache.stats(),
        }

    # ---------------------------------------------------------- async surface
    async def submit(self, request: ServeRequest) -> ServeResult:
        """Enqueue a request and await its result (starts the drain loop)."""
        loop = asyncio.get_running_loop()
        pending = self.enqueue(request)
        if pending.result is not None:  # executed synchronously already
            return pending.result
        pending.future = loop.create_future()
        self._ensure_running(loop)
        self._wake.set()
        return await pending.future

    def _ensure_running(self, loop: "asyncio.AbstractEventLoop") -> None:
        if self._run_task is None or self._run_task.done():
            if self._wake is None:
                self._wake = asyncio.Event()
            self._run_task = loop.create_task(self._run())

    async def _run(self) -> None:
        while True:
            self.step()
            deadline = self.next_deadline()
            self._wake.clear()
            if self.pending_count and deadline is not None:
                delay = max(deadline - self._clock(), 0.0)
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=delay)
                except asyncio.TimeoutError:
                    pass
            else:
                await self._wake.wait()

    async def aclose(self) -> None:
        """Flush outstanding requests and stop the drain loop."""
        self.drain()
        if self._run_task is not None:
            self._run_task.cancel()
            try:
                await self._run_task
            except asyncio.CancelledError:
                pass
            self._run_task = None

    async def __aenter__(self) -> "AttentionServer":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AttentionServer(max_batch_size={self.max_batch_size}, "
            f"max_wait_s={self.max_wait_s}, pending={self.pending_count})"
        )


def serve(
    requests: Sequence[ServeRequest],
    *,
    max_batch_size: int = 8,
    max_wait_s: float = 2e-3,
    backend: Optional[str] = None,
    server: Optional[AttentionServer] = None,
    structure_cache: Optional[StructureCache] = None,
) -> List[ServeResult]:
    """Serve a request list offline: enqueue everything, drain, return in order.

    The scheduler still groups compatible requests into ragged batches of at
    most ``max_batch_size``; ``max_batch_size=1`` is the sequential
    per-request baseline the ``serving_throughput`` benchmark compares
    against.  Results are returned in request order.
    """
    srv = server
    if srv is None:
        srv = AttentionServer(
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            backend=backend,
            structure_cache=structure_cache,
        )
    pendings = [srv.enqueue(request) for request in requests]
    srv.drain()
    return [p.result for p in pendings]
