"""Ragged attention kernels with exact request-isolation for the serving engine.

The batcher's whole promise is that coalescing requests is *free* in terms of
numerics: a request served inside a mixed ragged batch must produce output
bitwise-identical to the same request served alone.  Naive dense batching
breaks that promise — numpy's pairwise summation chooses its reduction trees
from the array extents, so padding a request's rows to the widest request in
the batch would change the last bits of its output.

The fused execution paths (:func:`ragged_attention` with per-sequence
``row_blocks``/``key_blocks``, and :func:`grouped_attention` for segments
sharing a cached structure) therefore make the *sequence* the unit of shape
determinism: every reduction runs on arrays whose extents are fixed by the
sequence's own row count, its own key count and its structure's own lane
width, never by the batch around it.  Identical shapes through identical ops
give identical reduction trees, so batch composition and stacking depth
cannot perturb a bit.  Scores and the output projection go through dense
BLAS matmuls over the segment's *own* key range (selecting / scattering the
compressed lanes around them) — on CPU that is several times faster than
gather-driven lane arithmetic, and a GEMM's reduction tree is a function of
its operand shapes, which the segment fixes.

The three stage kernels (:func:`ragged_sddmm` / :func:`ragged_masked_softmax`
/ :func:`ragged_spmm`) are the stricter width-*invariant* reference
formulation: a Python left fold over lanes in ascending order, where trailing
padding lanes contribute an exact additive identity (``+0.0``; the
accumulator can never be ``-0.0`` because it starts at ``+0.0`` and
``+0.0 + ±0.0 = +0.0``), so even re-padding a structure to a wider lane count
leaves their output bit-for-bit unchanged.  They are the oracle the fused
paths are tested against and the spelled-out semantics of the pipeline.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.sanitize import check_output, freeze_structure, guard_input
from repro.core.backend import MULTICORE, resolve_backend
from repro.core.padded_csr import PaddedCSRMatrix
from repro.core.sddmm import MASKED_SCORE
from repro.profile.tracer import current_tracer


def _kernel_span(name: str, **args):
    """Manual kernel span for the serving fast paths (they bypass the registry)."""
    tracer = current_tracer()
    if tracer is None:
        return nullcontext()
    return tracer.span(name, "kernel", backend="serve", **args)

__all__ = [
    "ragged_sddmm",
    "ragged_masked_softmax",
    "ragged_spmm",
    "ragged_attention",
    "GroupedPlan",
    "grouped_plan",
    "grouped_attention",
]



def ragged_sddmm(
    q: np.ndarray,
    k: np.ndarray,
    structure: PaddedCSRMatrix,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Sampled dense-dense scores ``(q kᵀ) * scale`` on the stored lanes.

    ``q`` is ``(rows, d)``, ``k`` is ``(dense_cols, d)`` — the concatenated
    query/key rows of a ragged batch — and ``structure`` a 2-D padded-CSR
    structure whose columns index into ``k``.  Padding lanes are stamped with
    the ``MASKED_SCORE`` sentinel.  One einsum per lane keeps the ``d``
    reduction tree independent of the batch extents.
    """
    rows, d = q.shape
    if structure.batch_shape != () or structure.rows != rows:
        raise ValueError(
            f"structure rows {structure.dense_shape} do not match q rows {rows}"
        )
    if k.shape != (structure.dense_cols, d):
        raise ValueError(
            f"k shape {k.shape} != ({structure.dense_cols}, {d})"
        )
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    qs = q * np.float32(scale)
    cols = structure.cols
    scores = np.empty((rows, structure.width), dtype=np.float32)
    for lane in range(structure.width):
        scores[:, lane] = np.einsum("rd,rd->r", k[cols[:, lane]], qs)
    return np.where(structure.valid_lanes(), scores, MASKED_SCORE)


def ragged_masked_softmax(
    scores: np.ndarray, structure: PaddedCSRMatrix
) -> np.ndarray:
    """Row softmax over the valid lanes; fully masked rows get exactly zero.

    The max is width-invariant by construction (padding lanes carry the
    sentinel, and ``max`` is exactly associative); the denominator is a left
    fold over lanes so appending padding lanes appends exact ``+0.0`` terms.
    """
    valid = structure.valid_lanes()
    peak = scores.max(axis=-1, keepdims=True)
    exp = np.where(valid, np.exp(scores - peak), np.float32(0.0))
    denom = np.zeros(exp.shape[:-1], dtype=np.float32)
    for lane in range(exp.shape[-1]):
        denom = denom + exp[:, lane]
    safe = np.where(denom > np.float32(0.0), denom, np.float32(1.0))
    return exp / safe[:, None]


def ragged_spmm(
    probs: np.ndarray, structure: PaddedCSRMatrix, v: np.ndarray
) -> np.ndarray:
    """``probs @ v`` on the compressed lanes, accumulated as a left lane fold."""
    rows, width = probs.shape
    out = np.zeros((rows, v.shape[-1]), dtype=np.float32)
    cols = structure.cols
    for lane in range(width):
        out = out + probs[:, lane, None] * v[cols[:, lane]]
    return out


def _fold_attention_block(
    qs: np.ndarray,
    cols: np.ndarray,
    lengths: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
) -> np.ndarray:
    """Vectorised masked attention over one sequence block (``qs`` pre-scaled).

    The block is one segment of a block-diagonal ragged batch; ``k``/``v``
    are *its own* key rows and ``cols`` indexes into them.  The lane count is
    clipped to the block's own longest row and the GEMM extents are fixed by
    the block's own ``(rows, n_k, d)``, so every array shape — and therefore
    every numpy reduction tree — is identical whether the segment shares the
    batch with one request or fifty.  That shape-determinism is what makes
    the fused path bitwise reproducible without the per-lane folds of the
    stage kernels above.

    Padding lanes can carry columns outside the block's key range (the
    block-diagonal concat clamps them to absolute column 0): they are clipped
    for the score select (then masked to the sentinel) and scattered to an
    extra sentinel column the output GEMM drops.
    """
    rows = qs.shape[0]
    n_k = k.shape[0]
    width = int(lengths.max()) if rows else 0
    if rows == 0 or width == 0:
        return np.zeros((rows, v.shape[-1]), dtype=np.float32)
    cols = np.clip(cols[:, :width], 0, n_k - 1).astype(np.int64, copy=False)
    valid = np.arange(width, dtype=lengths.dtype) < lengths[:, None]
    scores_full = np.matmul(qs, k.T)
    scores = np.take_along_axis(scores_full, cols, axis=1)
    scores = np.where(valid, scores, MASKED_SCORE)
    peak = scores.max(axis=-1, keepdims=True)
    exp = np.where(valid, np.exp(scores - peak), np.float32(0.0))
    denom = exp.sum(axis=-1)
    safe = np.where(denom > np.float32(0.0), denom, np.float32(1.0))
    probs = exp / safe[:, None]
    scatter = np.where(valid, cols, np.int64(n_k))
    dense_probs = np.zeros((rows, n_k + 1), dtype=np.float32)
    np.put_along_axis(dense_probs, scatter, probs, axis=1)
    return np.matmul(dense_probs[:, :n_k], v)


def ragged_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    structure: PaddedCSRMatrix,
    scale: Optional[float] = None,
    row_blocks: Optional[Sequence[Tuple[int, int]]] = None,
    key_blocks: Optional[Sequence[Tuple[int, int]]] = None,
) -> np.ndarray:
    """Masked attention over one ragged batch: SDDMM → softmax → SpMM.

    ``row_blocks`` names contiguous ``(start, stop)`` row ranges — the
    per-sequence blocks of a block-diagonal ragged batch (default: one block
    spanning every row) — and ``key_blocks`` the matching key-row ranges of
    each block (default: the full key range for every block).  Each block is
    computed with fully vectorised kernels whose array shapes are fixed by
    the block's own rows, its own key count and its own longest lane count,
    so the block partition is the unit of bitwise reproducibility: serving a
    sequence alone and serving it as one block of a fifty-request batch run
    the *same shapes through the same ops* and produce identical bits.  The
    serving batcher therefore always partitions per sequence, handing each
    block exactly its sequence's key range — which also keeps the GEMM
    working set cache-local however large the coalesced batch grows.
    """
    q = guard_input(q)
    k = guard_input(k)
    v = guard_input(v)
    rows, d = q.shape
    if structure.batch_shape != () or structure.rows != rows:
        raise ValueError(
            f"structure rows {structure.dense_shape} do not match q rows {rows}"
        )
    if k.shape != (structure.dense_cols, d):
        raise ValueError(f"k shape {k.shape} != ({structure.dense_cols}, {d})")
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    qs = q * np.float32(scale)
    if row_blocks is None:
        row_blocks = ((0, rows),)
    if key_blocks is None:
        key_blocks = ((0, k.shape[0]),) * len(row_blocks)
    if len(key_blocks) != len(row_blocks):
        raise ValueError(
            f"{len(key_blocks)} key blocks for {len(row_blocks)} row blocks"
        )
    out = np.empty((rows, v.shape[-1]), dtype=np.float32)
    with _kernel_span(
        "ragged_attention", shape=f"{rows}x{d}", blocks=len(row_blocks)
    ):
        for (start, stop), (k0, k1) in zip(row_blocks, key_blocks):
            out[start:stop] = _fold_attention_block(
                qs[start:stop],
                structure.cols[start:stop] - np.int32(k0),
                structure.lengths[start:stop],
                k[k0:k1],
                v[k0:k1],
            )
    return check_output(out, "ragged attention output")


@dataclass
class GroupedPlan:
    """Compiled lane geometry of one shared 2-D padded-CSR structure.

    The grouped fast path recomputes the same structure-only arrays — the
    clipped lane columns, the valid-lane mask, the scatter targets — on every
    batch flush even though they depend only on the (cached, shared)
    structure.  Compiling them once and memoising the plan on the structure's
    shared cache (:func:`grouped_plan`) makes the per-batch work pure GEMM +
    elementwise ops.  The execute path runs the *same arrays through the same
    op sequence* as the uncompiled formulation, so outputs are
    bitwise-identical.
    """

    structure: PaddedCSRMatrix
    #: lane count clipped to the longest stored row (0 for empty structures).
    width: int
    #: ``(rows, width)`` int64 columns, clipped in-range for the score select.
    cols: Optional[np.ndarray]
    #: ``(rows, width)`` valid-lane mask over the clipped width.
    valid: Optional[np.ndarray]
    #: ``(rows, width)`` scatter targets; padding lanes aim at the trash column.
    scatter: Optional[np.ndarray]

    @classmethod
    def compile(cls, structure: PaddedCSRMatrix) -> "GroupedPlan":
        lengths = structure.lengths
        n_k = structure.dense_cols
        width = int(lengths.max()) if structure.rows else 0
        if width == 0:
            return cls(structure, 0, None, None, None)
        cols = np.clip(structure.cols[:, :width], 0, n_k - 1).astype(
            np.int64, copy=False
        )
        valid = np.arange(width, dtype=lengths.dtype) < lengths[:, None]
        scatter = np.where(valid, cols, np.int64(n_k))
        return cls(
            structure,
            width,
            freeze_structure(cols),
            freeze_structure(valid),
            freeze_structure(scatter),
        )

    def __call__(self, qs: np.ndarray, k3: np.ndarray, v3: np.ndarray) -> np.ndarray:
        """Stacked attention over pre-scaled queries ``qs`` of shape ``(g, rows, d)``."""
        g, rows, _ = qs.shape
        n_k = self.structure.dense_cols
        if rows == 0 or self.width == 0:
            return np.zeros((g, rows, v3.shape[-1]), dtype=np.float32)
        scores_full = np.matmul(qs, k3.transpose(0, 2, 1))
        scores = np.take_along_axis(scores_full, self.cols[None], axis=2)
        scores = np.where(self.valid, scores, MASKED_SCORE)
        peak = scores.max(axis=-1, keepdims=True)
        exp = np.where(self.valid, np.exp(scores - peak), np.float32(0.0))
        denom = exp.sum(axis=-1)
        safe = np.where(denom > np.float32(0.0), denom, np.float32(1.0))
        probs = exp / safe[..., None]
        dense_probs = np.zeros((g, rows, n_k + 1), dtype=np.float32)
        np.put_along_axis(dense_probs, self.scatter[None], probs, axis=2)
        return np.matmul(dense_probs[:, :, :n_k], v3)


def grouped_plan(structure: PaddedCSRMatrix) -> GroupedPlan:
    """Compiled :class:`GroupedPlan` for ``structure``, memoised on its shared cache.

    The memo lives in the structure's shared cache dictionary, which
    ``with_values`` siblings share by reference — so a structure resolved
    through the serving :class:`~repro.serve.cache.StructureCache` carries its
    compiled plan across every batch (and every request) that reuses it.
    """
    plan = structure._shared.get("grouped_plan")
    if plan is None:
        plan = GroupedPlan.compile(structure)
        structure._shared["grouped_plan"] = plan
    return plan


def _grouped_multicore(
    plan: GroupedPlan, qs: np.ndarray, k3: np.ndarray, v3: np.ndarray
) -> Optional[np.ndarray]:
    """Tile the stacked pipeline over ``g`` on the multicore worker pool.

    Active only under the ``multicore`` backend; returns ``None`` whenever
    tiling is degenerate so the caller falls through to the single stacked
    call.  Each tile runs :meth:`GroupedPlan.__call__` on a contiguous
    ``g``-slice — every reduction extent is fixed by the shared structure and
    the plan arrays broadcast over ``g`` — so each output slice is
    bitwise-identical to the whole-batch stacked call's slice.
    """
    if resolve_backend(None) != MULTICORE:
        return None
    g = qs.shape[0]
    if g <= 1 or plan.width == 0 or qs.shape[1] == 0:
        return None
    from repro.core.multicore import get_pool, tile_slices

    pool = get_pool()
    if pool.workers <= 1:
        return None
    slices = tile_slices(g, pool.workers)
    if len(slices) <= 1:
        return None
    out = np.empty((g, qs.shape[1], v3.shape[-1]), dtype=np.float32)

    def tile_thunk(sl):
        def thunk():
            out[sl] = plan(qs[sl], k3[sl], v3[sl])  # repro: owns-buffer — disjoint slice of a preallocated tile output
        return thunk

    metas = [
        {
            "stage": "grouped_attention",
            "tile": i,
            "rows": f"{sl.start}:{sl.stop}",
            "shape": f"{sl.stop - sl.start}x{qs.shape[1]}x{qs.shape[2]}",
        }
        for i, sl in enumerate(slices)
    ]
    pool.run([tile_thunk(sl) for sl in slices], spans=metas)
    return out


def grouped_attention(
    q3: np.ndarray,
    k3: np.ndarray,
    v3: np.ndarray,
    structure: PaddedCSRMatrix,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Attention over ``g`` stacked sequences sharing one 2-D structure.

    ``q3`` is ``(g, rows, d)``, ``k3``/``v3`` are ``(g, dense_cols, ·)``.
    This is the structure-cache fast path: segments of *different requests*
    with the same (mechanism, config, lengths) share the cached structure, so
    one stacked GEMM pipeline replaces ``g`` separate ones — and the
    structure-only lane geometry is compiled once per structure
    (:func:`grouped_plan`) rather than per batch.  A stacked GEMM runs the
    same per-slice kernel as the 2-D case (the trailing extents the shared
    structure fixes are what choose the reduction tree), so each slice of the
    result is bitwise-identical to :func:`ragged_attention` on that slice
    alone — stacking depth, like batch composition, can never perturb a bit.
    """
    q3 = guard_input(q3)
    k3 = guard_input(k3)
    v3 = guard_input(v3)
    g, rows, d = q3.shape
    if structure.batch_shape != () or structure.rows != rows:
        raise ValueError(
            f"structure rows {structure.dense_shape} do not match q rows {rows}"
        )
    if k3.shape[:2] != (g, structure.dense_cols) or k3.shape[2] != d:
        raise ValueError(
            f"k shape {k3.shape} != ({g}, {structure.dense_cols}, {d})"
        )
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    qs = q3 * np.float32(scale)
    plan = grouped_plan(structure)
    with _kernel_span("grouped_attention", shape=f"{g}x{rows}x{d}", group=g):
        out = _grouped_multicore(plan, qs, k3, v3)
        if out is None:
            out = plan(qs, k3, v3)
    return check_output(out, "grouped attention output")
