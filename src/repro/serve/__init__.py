"""`repro.serve` — request-level attention serving over the mechanism registry.

The module is callable: ``repro.serve(requests)`` serves a request list
offline through the deadline-aware batching scheduler, coalescing compatible
requests of *different* mechanisms and sequence lengths into ragged
padded-CSR batches with bitwise request-isolation.  See
:mod:`repro.serve.engine` for the server, :mod:`repro.serve.batcher` for the
coalescing, :mod:`repro.serve.executor` for the width-invariant kernels, and
:mod:`repro.serve.workload` for the synthetic traffic generator.
"""

from __future__ import annotations

import sys
from types import ModuleType

from repro.serve.batcher import (
    PreparedRequest,
    Segment,
    prepare_request,
    run_ragged_batch,
    structure_cache_key,
)
from repro.serve.cache import StructureCache
from repro.serve.engine import AttentionServer, ServeRequest, ServeResult, serve
from repro.serve.executor import (
    grouped_attention,
    ragged_attention,
    ragged_masked_softmax,
    ragged_sddmm,
    ragged_spmm,
)
from repro.serve.workload import DEFAULT_MIX, synthetic_workload

__all__ = [
    "AttentionServer",
    "ServeRequest",
    "ServeResult",
    "serve",
    "StructureCache",
    "synthetic_workload",
    "DEFAULT_MIX",
    "Segment",
    "PreparedRequest",
    "prepare_request",
    "run_ragged_batch",
    "structure_cache_key",
    "ragged_attention",
    "grouped_attention",
    "ragged_sddmm",
    "ragged_masked_softmax",
    "ragged_spmm",
]


class _CallableServeModule(ModuleType):
    """Lets ``repro.serve(...)`` act as the facade while staying a module."""

    def __call__(self, requests, **kwargs):
        return serve(requests, **kwargs)


sys.modules[__name__].__class__ = _CallableServeModule
