"""Request preparation and ragged coalescing for the serving engine.

A :class:`~repro.serve.engine.ServeRequest` carries ``(..., seq, d)`` tensors
with arbitrary leading dimensions (heads, beams).  Preparation flattens the
leading dimensions into per-sequence *segments* — ``(seq, d)`` query/key/value
slices plus the 2-D compressed structure of that slice's attention mask — and
resolves the structure through the serving cache for static-mask mechanisms.
Coalescing then block-diagonally concatenates any number of segments from any
mix of mechanisms and sequence lengths
(:meth:`~repro.core.padded_csr.PaddedCSRMatrix.concat_ragged`) and runs the
width-invariant kernels of :mod:`repro.serve.executor` once over the whole
batch.

Requests whose mechanism is not ``batchable`` never reach this path; the
server executes them one by one through their
:class:`~repro.engine.AttentionEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.layout import SequenceSegments
from repro.core.padded_csr import PaddedCSRMatrix
from repro.serve.cache import StructureCache
from repro.serve.executor import grouped_attention, grouped_plan, ragged_attention

__all__ = [
    "Segment",
    "PreparedRequest",
    "structure_cache_key",
    "prepare_request",
    "run_ragged_batch",
]


@dataclass
class Segment:
    """One ``(seq, d)`` slice of a request plus its compressed mask structure."""

    q: np.ndarray
    k: np.ndarray
    v: np.ndarray
    structure: PaddedCSRMatrix


@dataclass
class PreparedRequest:
    """A request decomposed for execution: segments, route, cache accounting."""

    request: "object"  # ServeRequest; untyped to avoid the circular import
    mechanism: str
    batchable: bool
    segments: List[Segment]
    #: True/False for static-mask mechanisms (did the structure cache hit),
    #: None when no cache lookup happened (content-dependent or custom mask).
    cache_hit: Optional[bool]
    #: fallback engine for non-batchable requests (None on the ragged path).
    engine: Optional[object] = None


def structure_cache_key(
    mechanism: str, config, n_q: int, n_k: int
) -> Tuple[Hashable, ...]:
    """Cache key of a static mask: mechanism, full config, sequence lengths.

    Config values are keyed by ``repr`` so unhashable members (e.g. a blocked
    mask object) cannot poison the key; two configs with equal reprs build
    identical masks for static mechanisms.
    """
    described = config.describe()
    return (
        mechanism,
        tuple(sorted((name, repr(value)) for name, value in described.items())),
        n_q,
        n_k,
    )


def _compile_structure(mask: np.ndarray) -> PaddedCSRMatrix:
    """Compress a static mask and pre-compile its grouped execution plan."""
    structure = PaddedCSRMatrix.from_mask(np.asarray(mask, dtype=bool))
    grouped_plan(structure)  # memoised on the structure's shared cache
    return structure


def _flatten(request) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reshape the request tensors to ``(n_segments, seq, d)``."""
    q, k, v = request.q, request.k, request.v
    n_seg = int(np.prod(q.shape[:-2], dtype=np.int64)) if q.ndim > 2 else 1
    q3 = q.reshape(n_seg, q.shape[-2], q.shape[-1])
    k3 = k.reshape(n_seg, k.shape[-2], k.shape[-1])
    v3 = v.reshape(n_seg, v.shape[-2], v.shape[-1])
    return q3, k3, v3


def prepare_request(request, engine, cache: StructureCache) -> PreparedRequest:
    """Decompose one request into segments, resolving structures via ``cache``.

    ``engine`` is the request's :class:`~repro.engine.AttentionEngine` (or
    ``None`` when the request carries an explicit ``mask``, which bypasses the
    mechanism registry entirely).  Structure resolution happens here — at
    enqueue time — so the deadline scheduler's flush is pure kernel work.
    """
    if request.mask is not None:
        q3, k3, v3 = _flatten(request)
        n_seg, n_q, n_k = q3.shape[0], q3.shape[1], k3.shape[1]
        mask = np.asarray(request.mask, dtype=bool)
        if mask.shape[-2:] != (n_q, n_k):
            raise ValueError(
                f"mask trailing shape {mask.shape[-2:]} != ({n_q}, {n_k})"
            )
        if mask.ndim == 2:
            shared = PaddedCSRMatrix.from_mask(mask)
            structures = [shared] * n_seg
        else:
            m3 = np.broadcast_to(
                mask, request.q.shape[:-2] + (n_q, n_k)
            ).reshape(n_seg, n_q, n_k)
            structures = [PaddedCSRMatrix.from_mask(m3[i]) for i in range(n_seg)]
        segments = [
            Segment(q3[i], k3[i], v3[i], structures[i]) for i in range(n_seg)
        ]
        return PreparedRequest(request, "mask", True, segments, None)

    spec = engine.spec
    if not spec.batchable:
        return PreparedRequest(request, spec.name, False, [], None, engine=engine)

    q3, k3, v3 = _flatten(request)
    n_seg, n_q, n_k = q3.shape[0], q3.shape[1], k3.shape[1]
    cache_hit: Optional[bool] = None
    if spec.static_mask:
        key = structure_cache_key(spec.name, engine.config, n_q, n_k)
        cache_hit = key in cache
        # the mask depends only on (config, lengths): one representative 2-D
        # slice builds the structure every segment of every request shares,
        # and the grouped execution plan is compiled right here so the cached
        # entry carries it — batch flushes reuse the plan instead of
        # recomputing the lane geometry per batch
        shared = cache.get(
            key,
            lambda: _compile_structure(engine.attention_mask(q3[0], k3[0])),
        )
        structures = [shared] * n_seg
    else:
        mask = engine.attention_mask(q3, k3)
        if mask is None:
            raise ValueError(
                f"mechanism {spec.name!r} is flagged batchable but produced no "
                f"attention mask"
            )
        m3 = np.broadcast_to(np.asarray(mask, dtype=bool), (n_seg, n_q, n_k))
        structures = [PaddedCSRMatrix.from_mask(m3[i]) for i in range(n_seg)]
    segments = [Segment(q3[i], k3[i], v3[i], structures[i]) for i in range(n_seg)]
    return PreparedRequest(request, spec.name, True, segments, cache_hit)


def run_ragged_batch(prepared: Sequence[PreparedRequest]) -> List[np.ndarray]:
    """Execute batchable prepared requests as one ragged batch.

    Returns one output array per request, reshaped back to its leading
    dimensions.  Segments sharing a cached structure object — different
    heads, and different *requests* with the same (mechanism, config,
    lengths) — are stacked and executed by one grouped fold per lane
    (:func:`~repro.serve.executor.grouped_attention`); the remaining
    one-of-a-kind segments (content-dependent or custom masks) are
    block-diagonally coalesced through
    :meth:`~repro.core.padded_csr.PaddedCSRMatrix.concat_ragged`.  Both paths
    are width- and stacking-invariant, so every per-segment output is
    bitwise-identical to a batch of one.
    """
    segments = [seg for p in prepared for seg in p.segments]
    if not segments:
        return []
    groups: "dict[int, List[int]]" = {}
    for index, seg in enumerate(segments):
        groups.setdefault(id(seg.structure), []).append(index)

    outputs_by_segment: List[Optional[np.ndarray]] = [None] * len(segments)
    singles: List[int] = []
    for members in groups.values():
        if len(members) == 1:
            singles.append(members[0])
            continue
        stack = [segments[i] for i in members]
        out3 = grouped_attention(
            np.stack([s.q for s in stack]),
            np.stack([s.k for s in stack]),
            np.stack([s.v for s in stack]),
            stack[0].structure,
        )
        for slot, i in enumerate(members):
            outputs_by_segment[i] = out3[slot]

    if singles:
        stack = [segments[i] for i in singles]
        structure = PaddedCSRMatrix.concat_ragged([s.structure for s in stack])
        layout = SequenceSegments.from_lengths(
            [s.q.shape[0] for s in stack], [s.k.shape[0] for s in stack]
        )
        blocks = [
            (layout.row_offsets[i], layout.row_offsets[i + 1])
            for i in range(len(layout))
        ]
        key_blocks = [
            (layout.key_offsets[i], layout.key_offsets[i + 1])
            for i in range(len(layout))
        ]
        out = ragged_attention(
            np.concatenate([s.q for s in stack], axis=0),
            np.concatenate([s.k for s in stack], axis=0),
            np.concatenate([s.v for s in stack], axis=0),
            structure,
            row_blocks=blocks,
            key_blocks=key_blocks,
        )
        for i, part in zip(singles, layout.split_rows(out)):
            outputs_by_segment[i] = part

    outputs: List[np.ndarray] = []
    cursor = 0
    for p in prepared:
        chunk = outputs_by_segment[cursor:cursor + len(p.segments)]
        cursor += len(p.segments)
        lead = p.request.q.shape[:-2]
        if lead:
            outputs.append(np.stack(chunk, axis=0).reshape(lead + chunk[0].shape))
        else:
            outputs.append(chunk[0])
    return outputs
