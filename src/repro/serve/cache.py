"""LRU cache of compressed attention structures for the serving engine.

Static-mask mechanisms (``static_mask=True`` in the registry) derive their
boolean mask from the configuration and the sequence lengths alone — never
from request content — so the padded-CSR structure compressed for one request
serves every later request with the same ``(mechanism, config, lengths)``
key.  At serving scale this removes the mask build *and* the
``from_mask`` argsort from the hot path entirely; only content-dependent
mechanisms (DFSS, Top-K, LSH/clustering) pay per-request structure costs.

Hit/miss/eviction counters are first-class: the server surfaces them through
``AttentionServer.stats()`` so a deployment can see whether its traffic mix
actually reuses structures, and while a trace session is active each lookup
emits a ``structure_cache_hit``/``structure_cache_miss`` instant event onto
the timeline and counts into session totals reported in the trace metadata
(``structure_cache`` key) — covering even caches that are garbage by the
time the trace is written.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable

from repro.profile.tracer import (
    current_tracer,
    register_metadata_provider,
    register_session_hook,
)

__all__ = ["StructureCache"]

#: Aggregate counters across every cache instance, maintained only while a
#: trace session is active and reset at its boundaries — transient caches
#: (e.g. the one ``repro.serve.serve()`` builds per call) are usually garbage
#: by the time the trace is written, so the session totals are what the
#: metadata can still report.
_SESSION_TOTALS: Dict[str, int] = {"hits": 0, "misses": 0, "evictions": 0}
_TOTALS_LOCK = threading.Lock()


def _reset_session_totals() -> None:
    with _TOTALS_LOCK:
        _SESSION_TOTALS["hits"] = _SESSION_TOTALS["misses"] = 0
        _SESSION_TOTALS["evictions"] = 0


def _count_session(counter: str) -> None:
    with _TOTALS_LOCK:
        _SESSION_TOTALS[counter] += 1


class StructureCache:
    """Bounded LRU mapping of structure keys to compressed structures.

    Entries are evicted least-recently-*used* (a hit refreshes recency).
    The cache never inspects its values — any immutable-after-build object
    works — but in the serving engine every value is a 2-D
    :class:`~repro.core.padded_csr.PaddedCSRMatrix`.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries!r}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, build: Callable[[], object]) -> object:
        """Return the cached value for ``key``, building (and counting a miss)
        once on first use.

        Thread-safe (the multicore backend made concurrent executor calls a
        reality): counters, recency updates, and eviction all run under one
        lock.  ``build`` runs outside it, so a cold key may build more than
        once under a race — structures are immutable-after-build, so last
        write wins harmlessly.
        """
        tracer = current_tracer()
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                hit = False
                self.misses += 1
            else:
                hit = True
                self.hits += 1
                self._entries.move_to_end(key)
        if hit:
            if tracer is not None:
                _count_session("hits")
                tracer.instant("structure_cache_hit", "cache", key=repr(key))
            return value
        if tracer is not None:
            _count_session("misses")
            tracer.instant("structure_cache_miss", "cache", key=repr(key))
        value = build()
        with self._lock:
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                if tracer is not None:
                    _count_session("evictions")
        return value

    def stats(self) -> Dict[str, int]:
        """``{"hits", "misses", "evictions", "entries", "size"}`` snapshot.

        ``entries`` is kept alongside the cross-cache-conventional ``size``
        for backward compatibility — they are always equal.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "size": len(self._entries),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0


register_session_hook(_reset_session_totals)
register_metadata_provider("structure_cache", lambda: dict(_SESSION_TOTALS))
