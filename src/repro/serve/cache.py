"""LRU cache of compressed attention structures for the serving engine.

Static-mask mechanisms (``static_mask=True`` in the registry) derive their
boolean mask from the configuration and the sequence lengths alone — never
from request content — so the padded-CSR structure compressed for one request
serves every later request with the same ``(mechanism, config, lengths)``
key.  At serving scale this removes the mask build *and* the
``from_mask`` argsort from the hot path entirely; only content-dependent
mechanisms (DFSS, Top-K, LSH/clustering) pay per-request structure costs.

Hit/miss counters are first-class: the server surfaces them through
``AttentionServer.stats()`` so a deployment can see whether its traffic mix
actually reuses structures.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Hashable

__all__ = ["StructureCache"]


class StructureCache:
    """Bounded LRU mapping of structure keys to compressed structures.

    Entries are evicted least-recently-*used* (a hit refreshes recency).
    The cache never inspects its values — any immutable-after-build object
    works — but in the serving engine every value is a 2-D
    :class:`~repro.core.padded_csr.PaddedCSRMatrix`.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries!r}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, build: Callable[[], object]) -> object:
        """Return the cached value for ``key``, building (and counting a miss)
        once on first use."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            value = build()
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return value
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
