"""Synthetic masked-language-modelling task (Wikitext-2/103 stand-in, Table 3).

Sequences are sampled from a sparse first-order Markov chain over the
vocabulary, so each token is strongly predictable from its neighbours.  A
fraction of the tokens is replaced by a [MASK] token and the model must
recover them; the evaluation metric is perplexity over the masked positions,
matching the paper's Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.seeding import SeedLike, new_rng

PAD, MASK = 0, 1
FIRST_CONTENT_TOKEN = 2
IGNORE_INDEX = -100


@dataclass(frozen=True)
class SynthMLMConfig:
    """Scale parameters for the synthetic MLM task."""

    num_examples: int = 128
    seq_len: int = 64
    vocab_size: int = 64
    branching: int = 4  # successors per token in the Markov chain
    mask_prob: float = 0.15

    def __post_init__(self):
        if self.vocab_size <= FIRST_CONTENT_TOKEN + 1:
            raise ValueError("vocab_size too small")
        if not 0.0 < self.mask_prob < 1.0:
            raise ValueError("mask_prob must lie in (0, 1)")
        if self.branching < 1:
            raise ValueError("branching must be >= 1")


def _markov_transitions(cfg: SynthMLMConfig, rng: np.random.Generator) -> np.ndarray:
    """Successor table: for every content token, ``branching`` allowed successors."""
    content = cfg.vocab_size - FIRST_CONTENT_TOKEN
    return rng.integers(
        FIRST_CONTENT_TOKEN, cfg.vocab_size, size=(content, cfg.branching)
    )


def generate_mlm_dataset(
    config: SynthMLMConfig = SynthMLMConfig(), seed: SeedLike = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``(masked_tokens, targets)``.

    ``targets`` equals the original token at masked positions and
    ``IGNORE_INDEX`` everywhere else, matching the convention of
    :func:`repro.nn.functional.cross_entropy`.
    """
    rng = new_rng(seed)
    cfg = config
    transitions = _markov_transitions(cfg, rng)
    tokens = np.zeros((cfg.num_examples, cfg.seq_len), dtype=np.int64)
    for i in range(cfg.num_examples):
        current = int(rng.integers(FIRST_CONTENT_TOKEN, cfg.vocab_size))
        for t in range(cfg.seq_len):
            tokens[i, t] = current
            successors = transitions[current - FIRST_CONTENT_TOKEN]
            current = int(successors[rng.integers(0, cfg.branching)])
    mask = rng.random(tokens.shape) < cfg.mask_prob
    # never mask the first token (no left context to recover it from)
    mask[:, 0] = False
    targets = np.where(mask, tokens, IGNORE_INDEX)
    masked_tokens = np.where(mask, MASK, tokens)
    return masked_tokens, targets
