"""Synthetic byte-level text classification (LRA Text stand-in, Table 4).

Documents are long character sequences drawn from class-conditional bigram
distributions: each class has its own preferred character transitions plus a
small set of class-indicative "phrases" planted at random positions.  The
classifier must aggregate weak evidence spread over the whole sequence, like
the byte-level IMDB task in LRA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.seeding import SeedLike, new_rng

PAD = 0
FIRST_CHAR = 1


@dataclass(frozen=True)
class TextClsConfig:
    """Scale parameters for the synthetic text-classification task."""

    num_examples: int = 256
    seq_len: int = 128
    vocab_size: int = 32
    num_classes: int = 2
    phrase_len: int = 4
    phrases_per_doc: int = 3
    bigram_bias: float = 3.0

    def __post_init__(self):
        if self.vocab_size <= FIRST_CHAR + self.num_classes * self.phrase_len:
            raise ValueError("vocab_size too small for class phrases")
        if self.num_classes < 2:
            raise ValueError("need at least two classes")


def _class_bigrams(cfg: TextClsConfig, rng) -> np.ndarray:
    """Class-conditional bigram transition matrices over content characters."""
    content = cfg.vocab_size - FIRST_CHAR
    logits = rng.normal(size=(cfg.num_classes, content, content))
    # bias a random subset of transitions per class to make them discriminative
    for c in range(cfg.num_classes):
        rows = rng.integers(0, content, size=content)
        cols = rng.integers(0, content, size=content)
        logits[c, rows, cols] += cfg.bigram_bias
    probs = np.exp(logits - logits.max(axis=-1, keepdims=True))
    return probs / probs.sum(axis=-1, keepdims=True)


def generate_textcls_dataset(
    config: TextClsConfig = TextClsConfig(), seed: SeedLike = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``(token_ids, labels)``."""
    rng = new_rng(seed)
    cfg = config
    bigrams = _class_bigrams(cfg, rng)
    content = cfg.vocab_size - FIRST_CHAR
    # deterministic class phrases (distinct character ranges per class)
    phrases = np.stack(
        [
            FIRST_CHAR + (np.arange(cfg.phrase_len) + c * cfg.phrase_len) % content
            for c in range(cfg.num_classes)
        ]
    )
    tokens = np.zeros((cfg.num_examples, cfg.seq_len), dtype=np.int64)
    labels = rng.integers(0, cfg.num_classes, size=cfg.num_examples)
    for i in range(cfg.num_examples):
        c = int(labels[i])
        seq = np.zeros(cfg.seq_len, dtype=np.int64)
        current = int(rng.integers(0, content))
        for t in range(cfg.seq_len):
            seq[t] = FIRST_CHAR + current
            current = int(rng.choice(content, p=bigrams[c, current]))
        # plant class phrases
        for _ in range(cfg.phrases_per_doc):
            start = int(rng.integers(0, cfg.seq_len - cfg.phrase_len))
            seq[start : start + cfg.phrase_len] = phrases[c]
        tokens[i] = seq
    return tokens, labels.astype(np.int64)
