"""Synthetic span-extraction QA (SQuAD v1.1 stand-in, Tables 1 and 2).

Each example is a "context" of random filler tokens into which a short
*fact* is planted: a key token followed by a value phrase.  The "question"
(prepended to the context, separated by a [SEP] token) repeats the key token;
the model must predict the start/end positions of the value phrase.  Solving
the task requires content-based attention from the question tokens to the
matching position in the context — the same skill span-extraction QA tests —
so pruning attention too aggressively hurts, while keeping the high-magnitude
edges (DFSS) does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.seeding import SeedLike, new_rng

#: Special token ids.
PAD, CLS, SEP = 0, 1, 2
#: First id usable for content tokens.
FIRST_CONTENT_TOKEN = 3


@dataclass(frozen=True)
class SynthQAConfig:
    """Scale parameters for the synthetic QA task."""

    num_examples: int = 256
    seq_len: int = 64
    vocab_size: int = 64
    num_keys: int = 8
    answer_len: int = 3
    question_len: int = 4

    def __post_init__(self):
        if self.vocab_size <= FIRST_CONTENT_TOKEN + self.num_keys:
            raise ValueError("vocab_size too small for the requested number of keys")
        min_len = self.question_len + 2 + self.answer_len + 2
        if self.seq_len < min_len:
            raise ValueError(f"seq_len must be at least {min_len}")


def generate_qa_dataset(
    config: SynthQAConfig = SynthQAConfig(), seed: SeedLike = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``(token_ids, spans)`` arrays.

    ``token_ids`` has shape ``(num_examples, seq_len)``; ``spans`` has shape
    ``(num_examples, 2)`` holding the inclusive start/end indices of the
    answer phrase within the sequence.
    """
    rng = new_rng(seed)
    cfg = config
    key_tokens = np.arange(FIRST_CONTENT_TOKEN, FIRST_CONTENT_TOKEN + cfg.num_keys)
    filler_lo = FIRST_CONTENT_TOKEN + cfg.num_keys
    tokens = np.zeros((cfg.num_examples, cfg.seq_len), dtype=np.int64)
    spans = np.zeros((cfg.num_examples, 2), dtype=np.int64)

    context_start = cfg.question_len + 2  # [CLS] question ... [SEP]
    for i in range(cfg.num_examples):
        key = int(rng.choice(key_tokens))
        seq = rng.integers(filler_lo, cfg.vocab_size, size=cfg.seq_len)
        seq[0] = CLS
        # question: the key token repeated among filler, then [SEP]
        seq[1 : 1 + cfg.question_len] = rng.integers(
            filler_lo, cfg.vocab_size, size=cfg.question_len
        )
        seq[1] = key
        seq[1 + cfg.question_len] = SEP
        # plant the fact: key followed by the answer phrase, somewhere in the context
        answer_start = int(
            rng.integers(context_start + 1, cfg.seq_len - cfg.answer_len)
        )
        seq[answer_start - 1] = key
        answer = rng.integers(filler_lo, cfg.vocab_size, size=cfg.answer_len)
        seq[answer_start : answer_start + cfg.answer_len] = answer
        tokens[i] = seq
        spans[i] = (answer_start, answer_start + cfg.answer_len - 1)
    return tokens, spans


def train_test_split(
    tokens: np.ndarray, labels: np.ndarray, test_fraction: float = 0.25, seed: SeedLike = 0
):
    """Deterministic shuffled split shared by all the synthetic datasets."""
    rng = new_rng(seed)
    n = len(tokens)
    order = rng.permutation(n)
    n_test = max(1, int(round(test_fraction * n)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return (
        tokens[train_idx],
        labels[train_idx],
        tokens[test_idx],
        labels[test_idx],
    )
