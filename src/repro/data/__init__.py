"""Synthetic datasets standing in for the paper's evaluation corpora.

The paper evaluates on SQuAD v1.1, Wikitext-2/103 and four Long Range Arena
tasks — none of which can be downloaded in this offline environment.  Each
module here generates a synthetic task with the same *structure* (input
format, label type, evaluation metric) at a configurable scale, so the
relative comparisons between attention mechanisms are preserved:

* :mod:`repro.data.qa` — span-extraction QA (SQuAD stand-in, Tables 1/2);
* :mod:`repro.data.mlm` — Markov-chain masked language modelling
  (Wikitext stand-in, Table 3);
* :mod:`repro.data.listops` — nested list operations (LRA ListOps);
* :mod:`repro.data.textcls` — byte-level text classification (LRA Text);
* :mod:`repro.data.retrieval` — document matching (LRA Retrieval);
* :mod:`repro.data.image` — pixel-sequence image classification (LRA Image).
"""

from repro.data.qa import SynthQAConfig, generate_qa_dataset
from repro.data.mlm import SynthMLMConfig, generate_mlm_dataset
from repro.data.listops import ListOpsConfig, generate_listops_dataset
from repro.data.textcls import TextClsConfig, generate_textcls_dataset
from repro.data.retrieval import RetrievalConfig, generate_retrieval_dataset
from repro.data.image import ImageClsConfig, generate_image_dataset

__all__ = [
    "SynthQAConfig",
    "generate_qa_dataset",
    "SynthMLMConfig",
    "generate_mlm_dataset",
    "ListOpsConfig",
    "generate_listops_dataset",
    "TextClsConfig",
    "generate_textcls_dataset",
    "RetrievalConfig",
    "generate_retrieval_dataset",
    "ImageClsConfig",
    "generate_image_dataset",
]
