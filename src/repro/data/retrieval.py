"""Synthetic document-retrieval task (LRA Retrieval stand-in, Table 4).

Each example is a *pair* of documents; the binary label says whether the two
documents share a topic.  Documents are token sequences drawn from
topic-conditional unigram distributions with a planted topic signature, so
deciding the label requires comparing information aggregated across both long
sequences (the dual-encoder setup used by LRA Retrieval / AAN).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.seeding import SeedLike, new_rng

PAD = 0
FIRST_TOKEN = 1


@dataclass(frozen=True)
class RetrievalConfig:
    """Scale parameters for the synthetic retrieval task."""

    num_examples: int = 128
    seq_len: int = 128
    vocab_size: int = 64
    num_topics: int = 8
    signature_len: int = 4
    signature_count: int = 3

    def __post_init__(self):
        if self.num_topics < 2:
            raise ValueError("need at least two topics")
        if self.vocab_size <= FIRST_TOKEN + self.num_topics * self.signature_len:
            raise ValueError("vocab_size too small for topic signatures")


def _topic_unigrams(cfg: RetrievalConfig, rng) -> np.ndarray:
    content = cfg.vocab_size - FIRST_TOKEN
    logits = rng.normal(size=(cfg.num_topics, content)) * 1.5
    probs = np.exp(logits - logits.max(axis=-1, keepdims=True))
    return probs / probs.sum(axis=-1, keepdims=True)


def _sample_document(cfg: RetrievalConfig, topic: int, unigrams, signatures, rng) -> np.ndarray:
    content = cfg.vocab_size - FIRST_TOKEN
    doc = FIRST_TOKEN + rng.choice(content, size=cfg.seq_len, p=unigrams[topic])
    for _ in range(cfg.signature_count):
        start = int(rng.integers(0, cfg.seq_len - cfg.signature_len))
        doc[start : start + cfg.signature_len] = signatures[topic]
    return doc


def generate_retrieval_dataset(
    config: RetrievalConfig = RetrievalConfig(), seed: SeedLike = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``(token_pairs, labels)`` where token_pairs has shape (N, 2, seq)."""
    rng = new_rng(seed)
    cfg = config
    unigrams = _topic_unigrams(cfg, rng)
    content = cfg.vocab_size - FIRST_TOKEN
    signatures = np.stack(
        [
            FIRST_TOKEN + (np.arange(cfg.signature_len) + t * cfg.signature_len) % content
            for t in range(cfg.num_topics)
        ]
    )
    pairs = np.zeros((cfg.num_examples, 2, cfg.seq_len), dtype=np.int64)
    labels = np.zeros(cfg.num_examples, dtype=np.int64)
    for i in range(cfg.num_examples):
        same = bool(rng.random() < 0.5)
        topic_a = int(rng.integers(0, cfg.num_topics))
        if same:
            topic_b = topic_a
        else:
            topic_b = int((topic_a + 1 + rng.integers(0, cfg.num_topics - 1)) % cfg.num_topics)
        pairs[i, 0] = _sample_document(cfg, topic_a, unigrams, signatures, rng)
        pairs[i, 1] = _sample_document(cfg, topic_b, unigrams, signatures, rng)
        labels[i] = int(same)
    return pairs, labels
