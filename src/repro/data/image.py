"""Synthetic pixel-sequence image classification (LRA Image stand-in, Table 4).

Greyscale images containing simple geometric shapes (horizontal bar, vertical
bar, diagonal, centred square blob, ...) are flattened to 1-D pixel sequences
and quantised to a small number of intensity levels, mirroring the sCIFAR-10
setup where the transformer sees the image as a raw pixel sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.seeding import SeedLike, new_rng


@dataclass(frozen=True)
class ImageClsConfig:
    """Scale parameters for the synthetic image-classification task."""

    num_examples: int = 256
    image_size: int = 16  # sequence length is image_size**2
    num_levels: int = 16  # pixel intensity quantisation levels (vocabulary)
    num_classes: int = 4
    noise: float = 0.15

    def __post_init__(self):
        if self.num_classes < 2 or self.num_classes > 6:
            raise ValueError("num_classes must lie in [2, 6]")
        if self.image_size < 8:
            raise ValueError("image_size must be >= 8")

    @property
    def seq_len(self) -> int:
        return self.image_size * self.image_size

    @property
    def vocab_size(self) -> int:
        return self.num_levels


def _draw_shape(cls: int, size: int, rng) -> np.ndarray:
    """Render one of the class shapes on a ``size x size`` canvas in [0, 1]."""
    img = np.zeros((size, size), dtype=np.float32)
    thickness = max(1, size // 8)
    offset = int(rng.integers(size // 4, 3 * size // 4))
    if cls == 0:  # horizontal bar
        img[offset : offset + thickness, :] = 1.0
    elif cls == 1:  # vertical bar
        img[:, offset : offset + thickness] = 1.0
    elif cls == 2:  # main diagonal
        for i in range(size):
            img[i, max(0, i - thickness + 1) : i + 1] = 1.0
    elif cls == 3:  # centred square blob
        half = size // 4
        centre = size // 2
        img[centre - half : centre + half, centre - half : centre + half] = 1.0
    elif cls == 4:  # anti-diagonal
        for i in range(size):
            j = size - 1 - i
            img[i, j : min(size, j + thickness)] = 1.0
    else:  # cls == 5: border frame
        img[:thickness, :] = img[-thickness:, :] = 1.0
        img[:, :thickness] = img[:, -thickness:] = 1.0
    return img


def generate_image_dataset(
    config: ImageClsConfig = ImageClsConfig(), seed: SeedLike = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``(pixel_token_ids, labels)`` with tokens in ``[0, num_levels)``."""
    rng = new_rng(seed)
    cfg = config
    tokens = np.zeros((cfg.num_examples, cfg.seq_len), dtype=np.int64)
    labels = rng.integers(0, cfg.num_classes, size=cfg.num_examples).astype(np.int64)
    for i in range(cfg.num_examples):
        img = _draw_shape(int(labels[i]), cfg.image_size, rng)
        img = img + rng.normal(0.0, cfg.noise, size=img.shape)
        img = np.clip(img, 0.0, 1.0)
        quantised = np.minimum((img * cfg.num_levels).astype(np.int64), cfg.num_levels - 1)
        tokens[i] = quantised.reshape(-1)
    return tokens, labels
