"""Synthetic ListOps task (LRA ListOps stand-in, Table 4).

Sequences are prefix-notation expressions over single-digit operands with the
operators MIN, MAX, MED (median) and SM (sum modulo 10), e.g.

    [MAX 2 9 [MIN 4 7 ] 0 ]

The label is the value of the expression (0-9).  The generator controls depth
and length so the task fits the smaller synthetic scale while preserving the
hierarchical long-range structure that makes LRA ListOps hard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.seeding import SeedLike, new_rng

#: Token vocabulary: 10 digits, 4 operators, open/close brackets, padding.
PAD = 0
DIGIT_BASE = 1  # tokens 1..10 are digits 0..9
OP_MIN, OP_MAX, OP_MED, OP_SM = 11, 12, 13, 14
OPEN, CLOSE = 15, 16
VOCAB_SIZE = 17

_OPERATORS = {
    OP_MIN: lambda xs: min(xs),
    OP_MAX: lambda xs: max(xs),
    OP_MED: lambda xs: int(np.median(xs)),
    OP_SM: lambda xs: sum(xs) % 10,
}


@dataclass(frozen=True)
class ListOpsConfig:
    """Scale parameters for the synthetic ListOps task."""

    num_examples: int = 256
    seq_len: int = 128
    max_depth: int = 3
    max_args: int = 5

    def __post_init__(self):
        if self.max_args < 2:
            raise ValueError("max_args must be >= 2")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")


def _generate_expression(cfg: ListOpsConfig, rng, depth: int, budget: int) -> Tuple[List[int], int, int]:
    """Recursively build an expression; returns (tokens, value, tokens_used)."""
    if depth >= cfg.max_depth or budget < 6 or rng.random() < 0.3:
        digit = int(rng.integers(0, 10))
        return [DIGIT_BASE + digit], digit, 1
    op = int(rng.choice([OP_MIN, OP_MAX, OP_MED, OP_SM]))
    n_args = int(rng.integers(2, cfg.max_args + 1))
    tokens = [OPEN, op]
    used = 3  # open, op, close
    values = []
    for _ in range(n_args):
        if budget - used < 2:
            break
        sub_tokens, sub_value, sub_used = _generate_expression(
            cfg, rng, depth + 1, budget - used - 1
        )
        tokens.extend(sub_tokens)
        used += sub_used
        values.append(sub_value)
    if not values:  # safety: degenerate to a digit
        digit = int(rng.integers(0, 10))
        return [DIGIT_BASE + digit], digit, 1
    tokens.append(CLOSE)
    return tokens, _OPERATORS[op](values), used


def evaluate_expression(tokens: List[int]) -> int:
    """Evaluate a token list (used to cross-check the generator in tests)."""
    pos = 0

    def parse() -> int:
        nonlocal pos
        tok = tokens[pos]
        if DIGIT_BASE <= tok < DIGIT_BASE + 10:
            pos += 1
            return tok - DIGIT_BASE
        if tok != OPEN:
            raise ValueError(f"unexpected token {tok} at position {pos}")
        pos += 1
        op = tokens[pos]
        pos += 1
        values = []
        while tokens[pos] != CLOSE:
            values.append(parse())
        pos += 1
        return _OPERATORS[op](values)

    return parse()


def generate_listops_dataset(
    config: ListOpsConfig = ListOpsConfig(), seed: SeedLike = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``(token_ids, labels)`` with labels in ``[0, 10)``."""
    rng = new_rng(seed)
    cfg = config
    tokens = np.full((cfg.num_examples, cfg.seq_len), PAD, dtype=np.int64)
    labels = np.zeros(cfg.num_examples, dtype=np.int64)
    for i in range(cfg.num_examples):
        expr, value, _ = _generate_expression(cfg, rng, depth=0, budget=cfg.seq_len)
        expr = expr[: cfg.seq_len]
        tokens[i, : len(expr)] = expr
        labels[i] = value
    return tokens, labels
